#ifndef GKEYS_ISOMORPH_PAIRING_H_
#define GKEYS_ISOMORPH_PAIRING_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/neighborhood.h"
#include "pattern/pattern.h"

namespace gkeys {

/// Result of the maximum-pairing computation (paper Prop. 9).
struct PairingResult {
  /// Whether (e1, e2, x) survives in the maximum pairing relation, i.e.,
  /// (e1, e2) can be paired by Q. Pairing is a *necessary* condition for
  /// identification, so `false` proves (G, {Q}) ⊭ (e1, e2).
  bool paired = false;
  /// Nodes of Gd1 / Gd2 appearing in the maximum pairing relation. The
  /// §4.2 optimization replaces the d-neighbors by the subgraphs these
  /// induce.
  NodeSet reduced1;
  NodeSet reduced2;
  /// |P^Q|: size of the maximum pairing relation.
  size_t relation_size = 0;
  /// When requested, every surviving pair packed as (first << 32 | second),
  /// deduplicated across pattern nodes. The product-graph builder (§5.1)
  /// consumes these to form Vp.
  std::vector<uint64_t> pairs;
};

/// Packs a product pair the way PairingResult::pairs stores it.
inline uint64_t PackPair(NodeId a, NodeId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

/// Computes the maximum pairing relation P^Q of Q at (e1, e2) over the
/// d-neighbors (n1, n2) by fixpoint pruning, in O(|Q|·|Gd1|·|Gd2|) per
/// Prop. 9: start from all locally type/value-compatible triples
/// (s1, s2, s_Q) and repeatedly delete triples missing a required witness
/// along some pattern edge, until stable.
PairingResult ComputeMaxPairing(const Graph& g, const CompiledPattern& cp,
                                NodeId e1, NodeId e2, const NodeSet& n1,
                                const NodeSet& n2,
                                bool collect_pairs = false);

}  // namespace gkeys

#endif  // GKEYS_ISOMORPH_PAIRING_H_
