#ifndef GKEYS_ISOMORPH_PAIRING_H_
#define GKEYS_ISOMORPH_PAIRING_H_

#include <cstdint>
#include <memory>

#include "graph/graph.h"
#include "graph/neighborhood.h"
#include "pattern/pattern.h"

namespace gkeys {

/// Result of the maximum-pairing computation (paper Prop. 9).
struct PairingResult {
  /// Whether (e1, e2, x) survives in the maximum pairing relation, i.e.,
  /// (e1, e2) can be paired by Q. Pairing is a *necessary* condition for
  /// identification, so `false` proves (G, {Q}) ⊭ (e1, e2).
  bool paired = false;
  /// Nodes of Gd1 / Gd2 appearing in the maximum pairing relation. The
  /// §4.2 optimization replaces the d-neighbors by the subgraphs these
  /// induce.
  NodeSet reduced1;
  NodeSet reduced2;
  /// |P^Q|: size of the maximum pairing relation.
  size_t relation_size = 0;
  /// When requested, every surviving pair packed as (first << 32 | second),
  /// deduplicated across pattern nodes, ascending. The product-graph
  /// builder (§5.1) consumes these to form Vp.
  std::vector<uint64_t> pairs;
};

/// Packs a product pair the way PairingResult::pairs stores it.
inline uint64_t PackPair(NodeId a, NodeId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

/// Reusable buffers for ComputeMaxPairing: per-pattern-node candidate
/// domains, bitset relations, witness adjacency, and the deletion
/// worklist. One candidate-pair call is dominated by small allocations
/// without it, so the plan/engine layer keeps one scratch per worker
/// thread and threads it through every call. Not thread-safe; each thread
/// needs its own.
class PairingScratch {
 public:
  PairingScratch();
  ~PairingScratch();
  PairingScratch(PairingScratch&&) noexcept;
  PairingScratch& operator=(PairingScratch&&) noexcept;
  PairingScratch(const PairingScratch&) = delete;
  PairingScratch& operator=(const PairingScratch&) = delete;

 private:
  friend class PairingEngine;
  friend PairingResult ComputeMaxPairing(const Graph& g,
                                         const CompiledPattern& cp, NodeId e1,
                                         NodeId e2, const NodeSet& n1,
                                         const NodeSet& n2, bool collect_pairs,
                                         PairingScratch* scratch);
  struct State;
  std::unique_ptr<State> state_;
};

/// Computes the maximum pairing relation P^Q of Q at (e1, e2) over the
/// d-neighbors (n1, n2) by fixpoint pruning, in O(|Q|·|Gd1|·|Gd2|) per
/// Prop. 9: start from all locally type/value-compatible triples
/// (s1, s2, s_Q) and repeatedly delete triples missing a required witness
/// along some pattern edge, until stable.
///
/// Representation: per pattern node the locally compatible candidates of
/// each side are indexed into dense ids and the pair relation is a
/// row-major bitset over |left|×|right|; witness support is checked by
/// word-scans over precomputed per-(node, triple) adjacency, and deletions
/// propagate through a worklist that re-checks only the neighbor pairs
/// whose witness the deleted pair could have been (instead of rescanning
/// whole relations until quiescence).
///
/// `scratch` may be null (a private scratch is used); passing one reuses
/// its buffers across calls.
PairingResult ComputeMaxPairing(const Graph& g, const CompiledPattern& cp,
                                NodeId e1, NodeId e2, const NodeSet& n1,
                                const NodeSet& n2,
                                bool collect_pairs = false,
                                PairingScratch* scratch = nullptr);

}  // namespace gkeys

#endif  // GKEYS_ISOMORPH_PAIRING_H_
