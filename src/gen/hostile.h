#ifndef GKEYS_GEN_HOSTILE_H_
#define GKEYS_GEN_HOSTILE_H_

#include <cstdint>
#include <memory>
#include <string_view>

#include "common/rng.h"
#include "common/status.h"
#include "gen/synthetic.h"
#include "graph/delta.h"
#include "graph/graph.h"

namespace gkeys {

/// Hostile workload generators: graph shapes and delta distributions the
/// friendly datasets (gen/synthetic.h, gen/datasets.h) never produce, each
/// targeting one tuning assumption the optimized engines rely on. Like the
/// synthetic generator, every dataset generator emits its keys and graph
/// from one schema, with unique values everywhere except the planted
/// duplicates — so `planted` is exactly chase(G, Σ) and every run has an
/// exact built-in ground truth (tests/hostile_gen_test.cc pins this, and
/// the workload harness' differential oracle rides on it).

// ---------------------------------------------------------------------------
// Dataset generators (graph + keys + exact planted ground truth)
// ---------------------------------------------------------------------------

/// Power-law degree graph: a small `hub` type (value-based key) and a large
/// `leaf` type whose recursive key references a hub; leaves pick their hub
/// by a Zipf(alpha) draw, so the top hubs accumulate in-degrees orders of
/// magnitude above the median. Hostile to anything that walks incident
/// edges of a candidate's neighborhood (d-neighbors, pairing, plan
/// patching): the d-ball of a hot hub intersects a large share of all
/// leaves, so any delta near a hub dirties a wide region.
struct PowerLawConfig {
  uint64_t seed = 17;
  int num_hubs = 12;
  int num_leaves = 160;
  /// Zipf exponent for the leaf → hub draw (higher = more skew).
  double alpha = 1.2;
  /// Planted duplicate pairs among hubs / among leaves.
  int hub_dup_pairs = 2;
  int leaf_dup_pairs = 10;
  /// Of the leaf duplicate pairs, the fraction whose hubs are a planted
  /// hub pair (resolving only after that pair merges) instead of the same
  /// hub node.
  double chained_fraction = 0.5;
  /// Extra non-key `follows` edges per leaf, targets Zipf-drawn over
  /// leaves — fattens neighborhoods without touching the key alphabet.
  int follows_per_leaf = 2;
  double scale = 1.0;
};
SyntheticDataset GeneratePowerLaw(const PowerLawConfig& config);

/// Skewed key selectivity: one `item` type whose key has exactly ONE
/// signature source (a single value path) plus a recursive reference to an
/// `anchor` entity. A `hot_fraction` share of items all carry the same
/// literal on that source, so the only blocking bucket available is one
/// giant bucket: |L| grows quadratically in the hot set while almost
/// nothing in it is identifiable (every hot non-duplicate references its
/// own unique anchor). Hostile to signature blocking's most-selective-
/// source assumption and to any cost model reading candidates_initial.
struct SkewedSelectivityConfig {
  uint64_t seed = 23;
  int num_items = 120;
  /// Share of items whose key-source value is the shared hot literal.
  double hot_fraction = 0.5;
  /// Planted duplicate pairs (drawn from the hot set, so they hide inside
  /// the giant bucket).
  int dup_pairs = 6;
  /// Of those, the fraction resolving through a planted anchor pair
  /// (round 2) instead of a shared anchor node (round 1).
  double chained_fraction = 0.5;
  double scale = 1.0;
};
SyntheticDataset GenerateSkewedSelectivity(const SkewedSelectivityConfig& config);

/// Adversarial near-duplicate clusters: `cluster_size` products share one
/// cluster token on the key's value path, but each references its own
/// `part`; only the one true pair's parts agree on the part key's value.
/// Every cluster therefore contributes ~k²/2 candidates that all fail
/// isomorphism checks until (and unless) the part pair merges — a
/// dependency-wakeup and iso-check stress test where confirmed/candidates
/// approaches zero. Hostile to the §4.2 incremental/dependency
/// optimizations and to iso-check budgets.
struct NearDuplicateConfig {
  uint64_t seed = 31;
  int num_clusters = 12;
  /// Products per cluster (>= 2); exactly one pair per cluster is a true
  /// duplicate.
  int cluster_size = 6;
  double scale = 1.0;
};
SyntheticDataset GenerateNearDuplicates(const NearDuplicateConfig& config);

// ---------------------------------------------------------------------------
// Delta generators (reproducible hostile delta streams)
// ---------------------------------------------------------------------------

/// Tuning for one delta stream. Semantics per kind:
///   uniform — ops spread uniformly: random removals of existing triples
///             and additions of fresh attribute edges / entities.
///   hub     — ops concentrate on the top `hub_fraction` highest-degree
///             entities: edges incident to hubs are removed and new
///             entities attach to hubs, so every batch dirties the widest
///             possible region (worst case for MatchPlan::Patch).
///   churn   — add+remove the same region repeatedly: a keyed entity's
///             out-triples are removed in one batch and re-added verbatim
///             in the next, `churn_repeats` times per region, before
///             moving to the next region. Every removal batch retracts
///             real derivations (DRed) and every re-add batch re-derives
///             them — the retraction path's worst case.
struct DeltaGenConfig {
  uint64_t seed = 1;
  /// Target staged triple operations per batch (best effort: a batch may
  /// stage fewer when the graph runs out of eligible triples).
  size_t ops_per_batch = 8;
  /// uniform/hub: share of ops that are removals.
  double remove_fraction = 0.4;
  /// hub: share of entities (by descending degree) counted as hubs.
  double hub_fraction = 0.05;
  /// churn: remove+re-add cycles per region before moving on.
  int churn_repeats = 2;
};

/// A reproducible delta stream: Next() stages one batch against the
/// CURRENT graph (ids resolve against it, so call it after the previous
/// batch was applied). Deterministic in (kind, config, graph evolution):
/// two sessions applying the same batches see identical streams — the
/// workload harness runs one generator per algorithm under test and the
/// differential oracle relies on the streams matching.
class DeltaGenerator {
 public:
  virtual ~DeltaGenerator() = default;
  /// Stages the next batch. The delta may be empty when the graph has no
  /// eligible triples left (callers may stop or skip).
  virtual GraphDelta Next(const Graph& g) = 0;
};

/// Factory over the kinds above ("uniform", "hub", "churn").
/// InvalidArgument for an unknown kind.
StatusOr<std::unique_ptr<DeltaGenerator>> MakeDeltaGenerator(
    std::string_view kind, const DeltaGenConfig& config);

}  // namespace gkeys

#endif  // GKEYS_GEN_HOSTILE_H_
