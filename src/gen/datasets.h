#ifndef GKEYS_GEN_DATASETS_H_
#define GKEYS_GEN_DATASETS_H_

#include <cstdint>

#include "gen/synthetic.h"

namespace gkeys {

/// Stand-in for the Google+ social-attribute network of [21] (paper §6):
/// person entities connected to attribute entities (employer, university,
/// place, major, …) whose types partition the node set, with duplicate
/// accounts planted across "two networks". The raw crawl is not
/// distributable; this generator reproduces the structural features the
/// algorithms are sensitive to — attribute-star topology, value-based
/// keys on attribute types, recursive person keys, dependency chains
/// person → employer → place (c = 3). See DESIGN.md, substitution table.
struct GoogleSimConfig {
  uint64_t seed = 7;
  int num_persons = 120;
  int num_employers = 40;
  int num_universities = 30;
  int num_places = 25;
  int num_majors = 15;
  /// Duplicate account pairs planted among persons (and, transitively,
  /// among the attribute entities they reference).
  int duplicate_pairs = 12;
  double scale = 1.0;
};

SyntheticDataset GenerateGoogleSim(const GoogleSimConfig& config);

/// Stand-in for DBpedia 2014 [1] (paper §6): a knowledge base spanning the
/// paper's own running domains — music (Fig. 1 keys Q1–Q3 with the mutual
/// album ↔ artist recursion of Example 1), business (DAG keys Q4/Q5 for
/// company merging/splitting), addresses (constant key Q6), plus the
/// Fig. 7 keys (book by cover artist, company by CEO + parent company,
/// artist by birth place/date). Long-tail type distribution, duplicates
/// planted per domain.
struct DBpediaSimConfig {
  uint64_t seed = 11;
  int num_artists = 60;
  int num_albums = 90;
  int num_companies = 50;
  int num_books = 40;
  int num_locations = 20;
  int num_streets = 30;
  /// Duplicate pairs planted per domain (artists+albums resolve through
  /// mutual recursion, companies through the Q4 merge pattern, …).
  int duplicate_pairs = 8;
  double scale = 1.0;
};

SyntheticDataset GenerateDBpediaSim(const DBpediaSimConfig& config);

}  // namespace gkeys

#endif  // GKEYS_GEN_DATASETS_H_
