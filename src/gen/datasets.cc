#include "gen/datasets.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "common/rng.h"

namespace gkeys {

namespace {

void AddPlanted(SyntheticDataset& ds, NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  ds.planted.emplace_back(a, b);
}

}  // namespace

SyntheticDataset GenerateGoogleSim(const GoogleSimConfig& config) {
  SyntheticDataset ds;
  Rng rng(config.seed);
  Graph& g = ds.graph;

  Status st = ds.keys.AddFromDsl(R"(
    # Recursive person keys: identity flows person <- employer <- place.
    key PersonByNameEmployer for person {
      x -[name]-> n*
      x -[works_at]-> y:employer
    }
    key PersonByNameUniversity for person {
      x -[name]-> n*
      x -[studied_at]-> y:university
    }
    key EmployerByNamePlace for employer {
      x -[name]-> n*
      x -[located_in]-> y:place
    }
    key UniversityByName for university {
      x -[name]-> n*
      x -[established]-> yr*
    }
    key PlaceByNameZip for place {
      x -[name]-> n*
      x -[zip]-> z*
    }
    key MajorByName for major {
      x -[name]-> n*
      x -[field]-> f*
    }
  )");
  assert(st.ok());
  (void)st;

  auto scaled = [&](int v) {
    return std::max(1, static_cast<int>(v * config.scale));
  };
  int counter = 0;
  auto uniq = [&](const char* p) {
    return std::string(p) + "_" + std::to_string(counter++);
  };

  auto add_place = [&](const std::string& name, const std::string& zip) {
    NodeId e = g.AddEntity("place");
    g.AddTriple(e, "name", g.AddValue(name)).IgnoreError();
    g.AddTriple(e, "zip", g.AddValue(zip)).IgnoreError();
    return e;
  };
  auto add_university = [&](const std::string& name, const std::string& yr) {
    NodeId e = g.AddEntity("university");
    g.AddTriple(e, "name", g.AddValue(name)).IgnoreError();
    g.AddTriple(e, "established", g.AddValue(yr)).IgnoreError();
    return e;
  };
  auto add_major = [&](const std::string& name) {
    NodeId e = g.AddEntity("major");
    g.AddTriple(e, "name", g.AddValue(name)).IgnoreError();
    g.AddTriple(e, "field", g.AddValue(uniq("field"))).IgnoreError();
    return e;
  };
  auto add_employer = [&](const std::string& name, NodeId place) {
    NodeId e = g.AddEntity("employer");
    g.AddTriple(e, "name", g.AddValue(name)).IgnoreError();
    g.AddTriple(e, "located_in", place).IgnoreError();
    return e;
  };

  // ---- Background entities (singles with unique identifying values) ----
  std::vector<NodeId> places, universities, majors, employers;
  for (int i = 0; i < scaled(config.num_places); ++i) {
    places.push_back(add_place(uniq("city"), uniq("zip")));
  }
  for (int i = 0; i < scaled(config.num_universities); ++i) {
    universities.push_back(add_university(uniq("uni"), uniq("year")));
  }
  for (int i = 0; i < scaled(config.num_majors); ++i) {
    majors.push_back(add_major(uniq("major")));
  }
  for (int i = 0; i < scaled(config.num_employers); ++i) {
    employers.push_back(
        add_employer(uniq("corp"), places[rng.Below(places.size())]));
  }

  auto add_person = [&](const std::string& name, NodeId employer,
                        NodeId university, NodeId major) {
    NodeId e = g.AddEntity("person");
    g.AddTriple(e, "name", g.AddValue(name)).IgnoreError();
    g.AddTriple(e, "works_at", employer).IgnoreError();
    g.AddTriple(e, "studied_at", university).IgnoreError();
    g.AddTriple(e, "majored_in", major).IgnoreError();
    return e;
  };

  for (int i = 0; i < scaled(config.num_persons); ++i) {
    add_person(uniq("user"), employers[rng.Below(employers.size())],
               universities[rng.Below(universities.size())],
               majors[rng.Below(majors.size())]);
  }

  // ---- Planted duplicate accounts ----
  int dup = std::max(1, static_cast<int>(config.duplicate_pairs *
                                         config.scale));
  for (int j = 0; j < dup; ++j) {
    std::string tag = std::to_string(j);
    if (j % 2 == 0) {
      // Chained cluster: person pair -> employer pair -> place pair
      // (resolves in 3 dependency steps: c = 3).
      NodeId pa = add_place("dup_city_" + tag, "dup_zip_" + tag);
      NodeId pb = add_place("dup_city_" + tag, "dup_zip_" + tag);
      AddPlanted(ds, pa, pb);
      NodeId ea = add_employer("dup_corp_" + tag, pa);
      NodeId eb = add_employer("dup_corp_" + tag, pb);
      AddPlanted(ds, ea, eb);
      // Distinct universities/majors so only the employer key can fire.
      NodeId ua = add_person("dup_user_" + tag, ea,
                             universities[rng.Below(universities.size())],
                             majors[rng.Below(majors.size())]);
      NodeId ub = add_person("dup_user_" + tag, eb,
                             universities[rng.Below(universities.size())],
                             majors[rng.Below(majors.size())]);
      AddPlanted(ds, ua, ub);
    } else {
      // Identity cluster: the two accounts share the same attribute
      // entities — resolves in round 1 through node identity.
      NodeId shared_emp = employers[rng.Below(employers.size())];
      NodeId shared_uni = universities[rng.Below(universities.size())];
      NodeId ua = add_person("dup_user_" + tag, shared_emp, shared_uni,
                             majors[rng.Below(majors.size())]);
      NodeId ub = add_person("dup_user_" + tag, shared_emp, shared_uni,
                             majors[rng.Below(majors.size())]);
      AddPlanted(ds, ua, ub);
    }
  }

  g.Finalize();
  std::sort(ds.planted.begin(), ds.planted.end());
  return ds;
}

SyntheticDataset GenerateDBpediaSim(const DBpediaSimConfig& config) {
  SyntheticDataset ds;
  Rng rng(config.seed);
  Graph& g = ds.graph;

  Status st = ds.keys.AddFromDsl(R"(
    # Fig. 1, music (Example 1): mutual recursion album <-> artist.
    key Q1_AlbumByNameArtist for album {
      x -[name_of]-> n*
      x -[recorded_by]-> y:artist
    }
    key Q2_AlbumByNameYear for album {
      x -[name_of]-> n*
      x -[release_year]-> yr*
    }
    key Q3_ArtistByNameAlbum for artist {
      x -[name_of]-> n*
      y:album -[recorded_by]-> x
    }
    # Fig. 1, business: DAG patterns for merging / splitting.
    key Q4_CompanyMerge for company {
      x -[name_of]-> n*
      _p:company -[name_of]-> n*
      _p -[parent_of]-> x
      y:company -[parent_of]-> x
    }
    key Q5_CompanySplit for company {
      x -[name_of]-> n*
      _p:company -[name_of]-> n*
      _p -[parent_of]-> x
      _p -[parent_of]-> y:company
    }
    # Fig. 1, address: constant condition.
    key Q6_StreetByZip for street {
      x -[zip_code]-> code*
      x -[nation_of]-> "UK"
    }
    # Fig. 7 keys.
    key F7_BookByCoverArtist for book {
      x -[name_of]-> n*
      x -[cover_artist]-> y:artist
      x -[publisher]-> _c:company
      _c -[employer_of]-> y
    }
    key F7_ArtistByBirth for artist {
      x -[name_of]-> n1*
      x -[birth_date]-> bd*
      x -[birth_place]-> y:location
    }
    key F7_CompanyByCeoParent for company {
      x -[name_of]-> n1*
      x -[CEO]-> _h:person
      _h -[name_of]-> n2*
      x -[parent_company]-> y:company
    }
    key LocationByName for location {
      x -[name_of]-> n*
      x -[country_of]-> cc*
    }
  )");
  assert(st.ok());
  (void)st;

  auto scaled = [&](int v) {
    return std::max(1, static_cast<int>(v * config.scale));
  };
  int counter = 0;
  auto uniq = [&](const char* p) {
    return std::string(p) + "_" + std::to_string(counter++);
  };
  auto named = [&](const char* type, const std::string& name) {
    NodeId e = g.AddEntity(type);
    g.AddTriple(e, "name_of", g.AddValue(name)).IgnoreError();
    return e;
  };

  // ---- Background singles ----
  std::vector<NodeId> artists, albums, companies, locations;
  for (int i = 0; i < scaled(config.num_locations); ++i) {
    NodeId l = named("location", uniq("loc"));
    g.AddTriple(l, "country_of", g.AddValue(uniq("cc"))).IgnoreError();
    locations.push_back(l);
  }
  for (int i = 0; i < scaled(config.num_artists); ++i) {
    NodeId a = named("artist", uniq("artist"));
    g.AddTriple(a, "birth_date", g.AddValue(uniq("bd"))).IgnoreError();
    g.AddTriple(a, "birth_place", locations[rng.Below(locations.size())]).IgnoreError();
    artists.push_back(a);
  }
  for (int i = 0; i < scaled(config.num_albums); ++i) {
    NodeId al = named("album", uniq("album"));
    g.AddTriple(al, "release_year", g.AddValue(uniq("year"))).IgnoreError();
    g.AddTriple(al, "recorded_by", artists[rng.Below(artists.size())]).IgnoreError();
    albums.push_back(al);
  }
  for (int i = 0; i < scaled(config.num_companies); ++i) {
    NodeId co = named("company", uniq("corp"));
    NodeId ceo = named("person", uniq("ceo"));
    g.AddTriple(co, "CEO", ceo).IgnoreError();
    companies.push_back(co);
  }
  for (int i = 0; i < scaled(config.num_books); ++i) {
    NodeId b = named("book", uniq("book"));
    g.AddTriple(b, "cover_artist", artists[rng.Below(artists.size())]).IgnoreError();
    g.AddTriple(b, "publisher", companies[rng.Below(companies.size())]).IgnoreError();
  }
  for (int i = 0; i < scaled(config.num_streets); ++i) {
    NodeId s = g.AddEntity("street");
    g.AddTriple(s, "zip_code", g.AddValue(uniq("zip"))).IgnoreError();
    g.AddTriple(s, "nation_of",
                      g.AddValue(i % 3 == 0 ? "UK" : "US")).IgnoreError();
  }

  int dup = std::max(1, static_cast<int>(config.duplicate_pairs *
                                         config.scale));
  for (int j = 0; j < dup; ++j) {
    std::string tag = std::to_string(j);

    // ---- Music cluster (the paper's G1, Example 7): albums A resolve by
    // Q2 (name + year), artists by Q3 (name + album), albums B by Q1
    // (name + artist): a 3-step mutually recursive chain.
    NodeId r1 = named("artist", "dup_artist_" + tag);
    NodeId r2 = named("artist", "dup_artist_" + tag);
    NodeId a1 = named("album", "dup_albumA_" + tag);
    NodeId a2 = named("album", "dup_albumA_" + tag);
    g.AddTriple(a1, "release_year", g.AddValue("y" + tag)).IgnoreError();
    g.AddTriple(a2, "release_year", g.AddValue("y" + tag)).IgnoreError();
    g.AddTriple(a1, "recorded_by", r1).IgnoreError();
    g.AddTriple(a2, "recorded_by", r2).IgnoreError();
    NodeId b1 = named("album", "dup_albumB_" + tag);
    NodeId b2 = named("album", "dup_albumB_" + tag);
    g.AddTriple(b1, "release_year", g.AddValue(uniq("year"))).IgnoreError();
    g.AddTriple(b2, "release_year", g.AddValue(uniq("year"))).IgnoreError();
    g.AddTriple(b1, "recorded_by", r1).IgnoreError();
    g.AddTriple(b2, "recorded_by", r2).IgnoreError();
    AddPlanted(ds, a1, a2);
    AddPlanted(ds, r1, r2);
    AddPlanted(ds, b1, b2);

    // ---- Business cluster (the paper's G2): (m1, m2) are split children
    // of the same-name grandparent identified by Q5 (shared sibling);
    // (x4, x5) are merge children identified by Q4 (shared other parent).
    NodeId gp = named("company", "dup_corp_" + tag);   // grandparent
    NodeId m1 = named("company", "dup_corp_" + tag);
    NodeId m2 = named("company", "dup_corp_" + tag);
    NodeId sib = named("company", uniq("corp"));       // shared sibling
    g.AddTriple(gp, "parent_of", m1).IgnoreError();
    g.AddTriple(gp, "parent_of", m2).IgnoreError();
    g.AddTriple(gp, "parent_of", sib).IgnoreError();
    AddPlanted(ds, m1, m2);
    NodeId oth = named("company", uniq("corp"));       // the other parent
    NodeId x4 = named("company", "dup_corp_" + tag);   // merged child
    NodeId x5 = named("company", "dup_corp_" + tag);   // merged child
    g.AddTriple(m1, "parent_of", x4).IgnoreError();
    g.AddTriple(m2, "parent_of", x5).IgnoreError();
    g.AddTriple(oth, "parent_of", x4).IgnoreError();
    g.AddTriple(oth, "parent_of", x5).IgnoreError();
    AddPlanted(ds, x4, x5);

    // ---- Company chain through F7_CompanyByCeoParent: subsidiary pair
    // resolves only after its parent pair (m1, m2) does (c = 2).
    NodeId sub1 = named("company", "dup_sub_" + tag);
    NodeId sub2 = named("company", "dup_sub_" + tag);
    NodeId ceo1 = named("person", "dup_ceo_" + tag);
    NodeId ceo2 = named("person", "dup_ceo_" + tag);
    g.AddTriple(sub1, "CEO", ceo1).IgnoreError();
    g.AddTriple(sub2, "CEO", ceo2).IgnoreError();
    g.AddTriple(sub1, "parent_company", m1).IgnoreError();
    g.AddTriple(sub2, "parent_company", m2).IgnoreError();
    AddPlanted(ds, sub1, sub2);

    // ---- Book cluster (Fig. 7): location pair -> artist pair (by birth)
    // -> book pair (by cover artist + publisher wildcard): c = 3.
    NodeId l1 = named("location", "dup_loc_" + tag);
    NodeId l2 = named("location", "dup_loc_" + tag);
    g.AddTriple(l1, "country_of", g.AddValue("cc" + tag)).IgnoreError();
    g.AddTriple(l2, "country_of", g.AddValue("cc" + tag)).IgnoreError();
    AddPlanted(ds, l1, l2);
    NodeId p1 = named("artist", "dup_painter_" + tag);
    NodeId p2 = named("artist", "dup_painter_" + tag);
    g.AddTriple(p1, "birth_date", g.AddValue("bdate" + tag)).IgnoreError();
    g.AddTriple(p2, "birth_date", g.AddValue("bdate" + tag)).IgnoreError();
    g.AddTriple(p1, "birth_place", l1).IgnoreError();
    g.AddTriple(p2, "birth_place", l2).IgnoreError();
    AddPlanted(ds, p1, p2);
    NodeId k1 = named("book", "dup_book_" + tag);
    NodeId k2 = named("book", "dup_book_" + tag);
    NodeId pub1 = named("company", uniq("corp"));
    NodeId pub2 = named("company", uniq("corp"));
    g.AddTriple(k1, "cover_artist", p1).IgnoreError();
    g.AddTriple(k2, "cover_artist", p2).IgnoreError();
    g.AddTriple(k1, "publisher", pub1).IgnoreError();
    g.AddTriple(k2, "publisher", pub2).IgnoreError();
    g.AddTriple(pub1, "employer_of", p1).IgnoreError();
    g.AddTriple(pub2, "employer_of", p2).IgnoreError();
    AddPlanted(ds, k1, k2);

    // ---- Address cluster (Q6): two UK streets sharing a zip code are
    // the same street; the same zip in the US must NOT identify.
    NodeId s1 = g.AddEntity("street");
    NodeId s2 = g.AddEntity("street");
    g.AddTriple(s1, "zip_code", g.AddValue("dupzip_" + tag)).IgnoreError();
    g.AddTriple(s2, "zip_code", g.AddValue("dupzip_" + tag)).IgnoreError();
    g.AddTriple(s1, "nation_of", g.AddValue("UK")).IgnoreError();
    g.AddTriple(s2, "nation_of", g.AddValue("UK")).IgnoreError();
    AddPlanted(ds, s1, s2);
    NodeId us1 = g.AddEntity("street");
    NodeId us2 = g.AddEntity("street");
    g.AddTriple(us1, "zip_code", g.AddValue("uszip_" + tag)).IgnoreError();
    g.AddTriple(us2, "zip_code", g.AddValue("uszip_" + tag)).IgnoreError();
    g.AddTriple(us1, "nation_of", g.AddValue("US")).IgnoreError();
    g.AddTriple(us2, "nation_of", g.AddValue("US")).IgnoreError();
  }

  g.Finalize();
  std::sort(ds.planted.begin(), ds.planted.end());
  return ds;
}

}  // namespace gkeys
