#ifndef GKEYS_GEN_SYNTHETIC_H_
#define GKEYS_GEN_SYNTHETIC_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "keys/key.h"

namespace gkeys {

/// Controls for the synthetic graph + key generator (paper §6,
/// "Experimental setting"). The generator and its key generator share a
/// schema, so the produced Σ is guaranteed to be meaningful on the
/// produced G, and the planted duplicates are the exact ground truth.
///
/// Schema: `num_groups` independent dependency chains of keyed entity
/// types T_{g,0} → T_{g,1} → … → T_{g,c-1} (c = chain_length, the paper's
/// longest-dependency-chain parameter). The key for T_{g,i}, i < c-1 is
/// recursive:
///
///     key K_g_i for T_g_i {
///       x -[a_g_i_1]-> _w1:A_1 … -[a_g_i_d]-> v*   # radius-d value path
///       x -[ref_g_i]-> y:T_g_{i+1}                  # recursive reference
///     }
///
/// and the chain's last key is value-based (two radius-d value paths).
/// Every entity carries the full key structure; non-duplicates get unique
/// values so the planted pairs are exactly chase(G, Σ) (tests rely on
/// this).
struct SyntheticConfig {
  uint64_t seed = 42;
  /// Number of type chains; total keys = num_groups * chain_length.
  int num_groups = 4;
  /// c: length of the dependency chains (1 = all keys value-based).
  int chain_length = 2;
  /// d: radius of every key (length of the value paths).
  int radius = 2;
  /// Entities per keyed type before scaling.
  int entities_per_type = 40;
  /// Fraction of entities that receive a planted duplicate.
  double duplicate_fraction = 0.15;
  /// Of the planted duplicates at non-leaf levels, the fraction resolved
  /// through a full dependency chain (the rest share their reference
  /// target and resolve immediately through node identity).
  double chained_fraction = 0.5;
  /// Uniform random extra edges per entity, with predicates outside the
  /// key alphabet (noise the matcher must look past).
  int noise_edges_per_entity = 2;
  /// Number of distinct noise predicates.
  int noise_predicates = 20;
  /// Multiplies entities_per_type (the Exp-2 scale factor).
  double scale = 1.0;
};

/// A generated workload: graph, keys, and the exact expected output of
/// entity matching.
struct SyntheticDataset {
  Graph graph;
  KeySet keys;
  /// Ground truth: the directly planted duplicate pairs (each entity is in
  /// at most one pair, so this equals chase(G, Σ)), sorted.
  std::vector<std::pair<NodeId, NodeId>> planted;
};

/// Generates a dataset; deterministic in the config (including seed).
SyntheticDataset GenerateSynthetic(const SyntheticConfig& config);

}  // namespace gkeys

#endif  // GKEYS_GEN_SYNTHETIC_H_
