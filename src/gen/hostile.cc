#include "gen/hostile.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace gkeys {

namespace {

/// Cumulative Zipf(alpha) distribution over [0, n): weight of rank k is
/// 1/(k+1)^alpha. Sampling is a binary search over the prefix sums, so a
/// draw costs O(log n) and is fully determined by the Rng stream.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double alpha) : cum_(n) {
    double total = 0;
    for (size_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
      cum_[k] = total;
    }
    for (double& c : cum_) c /= total;
  }

  size_t Draw(Rng& rng) const {
    double u = rng.NextDouble();
    auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
    return it == cum_.end() ? cum_.size() - 1
                            : static_cast<size_t>(it - cum_.begin());
  }

 private:
  std::vector<double> cum_;
};

int Scaled(int base, double scale, int floor) {
  return std::max(floor, static_cast<int>(base * scale));
}

void Plant(SyntheticDataset& ds, NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  ds.planted.emplace_back(a, b);
}

}  // namespace

SyntheticDataset GeneratePowerLaw(const PowerLawConfig& config) {
  SyntheticDataset ds;
  Rng rng(config.seed);

  const int hubs = std::max(2, config.num_hubs);
  const int leaves = Scaled(config.num_leaves, config.scale, 4);
  int hub_dups = std::min(config.hub_dup_pairs, hubs / 2);
  int leaf_dups =
      std::min(Scaled(config.leaf_dup_pairs, config.scale, 1), leaves / 2);

  Status st = ds.keys.AddFromDsl(
      "key K_hub for hub {\n"
      "  x -[hv0]-> v0*\n"
      "  x -[hv1]-> v1*\n"
      "}\n"
      "key K_leaf for leaf {\n"
      "  x -[la]-> v0*\n"
      "  x -[link]-> y:hub\n"
      "}\n");
  assert(st.ok());
  (void)st;

  Graph& g = ds.graph;
  int uniq = 0;
  auto fresh = [&](const char* prefix) {
    return std::string(prefix) + "_" + std::to_string(uniq++);
  };

  // Hubs: duplicate pairs share both attribute values; singles are unique.
  auto make_hub = [&](const std::string& v0, const std::string& v1) {
    NodeId h = g.AddEntity("hub");
    g.AddTriple(h, "hv0", g.AddValue(v0)).IgnoreError();
    g.AddTriple(h, "hv1", g.AddValue(v1)).IgnoreError();
    return h;
  };
  std::vector<NodeId> all_hubs;
  std::vector<std::pair<NodeId, NodeId>> hub_pairs;
  for (int j = 0; j < hub_dups; ++j) {
    std::string v0 = "hd0_" + std::to_string(j);
    std::string v1 = "hd1_" + std::to_string(j);
    NodeId a = make_hub(v0, v1);
    NodeId b = make_hub(v0, v1);
    hub_pairs.emplace_back(a, b);
    all_hubs.push_back(a);
    all_hubs.push_back(b);
    Plant(ds, a, b);
  }
  for (int s = 0; s < hubs - 2 * hub_dups; ++s) {
    all_hubs.push_back(make_hub(fresh("hs0"), fresh("hs1")));
  }

  // Leaves: unique `la` except planted pairs; hub chosen by a Zipf draw,
  // so the first hubs in `all_hubs` accumulate in-degree.
  ZipfSampler hub_zipf(all_hubs.size(), config.alpha);
  auto make_leaf = [&](const std::string& la, NodeId hub) {
    NodeId l = g.AddEntity("leaf");
    g.AddTriple(l, "la", g.AddValue(la)).IgnoreError();
    g.AddTriple(l, "link", hub).IgnoreError();
    return l;
  };
  std::vector<NodeId> all_leaves;
  for (int j = 0; j < leaf_dups; ++j) {
    std::string la = "ld_" + std::to_string(j);
    bool chained = !hub_pairs.empty() && rng.Chance(config.chained_fraction);
    NodeId a, b;
    if (chained) {
      // Resolves only after the hub pair merges (round >= 2).
      const auto& [ha, hb] = hub_pairs[j % hub_pairs.size()];
      a = make_leaf(la, ha);
      b = make_leaf(la, hb);
    } else {
      NodeId h = all_hubs[hub_zipf.Draw(rng)];
      a = make_leaf(la, h);
      b = make_leaf(la, h);
    }
    all_leaves.push_back(a);
    all_leaves.push_back(b);
    Plant(ds, a, b);
  }
  for (int s = 0; s < leaves - 2 * leaf_dups; ++s) {
    all_leaves.push_back(
        make_leaf(fresh("ls"), all_hubs[hub_zipf.Draw(rng)]));
  }

  // Non-key `follows` edges, targets Zipf-drawn over leaves: skewed
  // degree inside the leaf population too, invisible to the keys.
  if (config.follows_per_leaf > 0 && all_leaves.size() > 1) {
    ZipfSampler leaf_zipf(all_leaves.size(), config.alpha);
    for (NodeId l : all_leaves) {
      for (int k = 0; k < config.follows_per_leaf; ++k) {
        NodeId t = all_leaves[leaf_zipf.Draw(rng)];
        if (t != l) g.AddTriple(l, "follows", t).IgnoreError();
      }
    }
  }

  g.Finalize();
  std::sort(ds.planted.begin(), ds.planted.end());
  return ds;
}

SyntheticDataset GenerateSkewedSelectivity(
    const SkewedSelectivityConfig& config) {
  SyntheticDataset ds;
  Rng rng(config.seed);

  const int items = Scaled(config.num_items, config.scale, 4);
  const int hot = std::max(2, static_cast<int>(items * config.hot_fraction));
  int dups = std::min(Scaled(config.dup_pairs, config.scale, 1), hot / 2);

  Status st = ds.keys.AddFromDsl(
      "key K_item for item {\n"
      "  x -[ia]-> v0*\n"
      "  x -[iref]-> y:anchor\n"
      "}\n"
      "key K_anchor for anchor {\n"
      "  x -[ab]-> v0*\n"
      "}\n");
  assert(st.ok());
  (void)st;

  Graph& g = ds.graph;
  int uniq = 0;
  auto fresh = [&](const char* prefix) {
    return std::string(prefix) + "_" + std::to_string(uniq++);
  };
  auto make_anchor = [&](const std::string& ab) {
    NodeId a = g.AddEntity("anchor");
    g.AddTriple(a, "ab", g.AddValue(ab)).IgnoreError();
    return a;
  };
  auto make_item = [&](const std::string& ia, NodeId anchor) {
    NodeId e = g.AddEntity("item");
    g.AddTriple(e, "ia", g.AddValue(ia)).IgnoreError();
    g.AddTriple(e, "iref", anchor).IgnoreError();
    return e;
  };

  // Planted duplicates live inside the hot bucket: they share the hot
  // literal with every hot single, so blocking cannot separate them.
  for (int j = 0; j < dups; ++j) {
    NodeId a, b;
    if (rng.Chance(config.chained_fraction)) {
      // The pair's anchors are themselves a planted duplicate: the item
      // pair resolves one round after the anchor pair.
      std::string ab = "anch_d_" + std::to_string(j);
      NodeId aa = make_anchor(ab);
      NodeId ba = make_anchor(ab);
      Plant(ds, aa, ba);
      a = make_item("hot", aa);
      b = make_item("hot", ba);
    } else {
      NodeId shared = make_anchor(fresh("anch_s"));
      a = make_item("hot", shared);
      b = make_item("hot", shared);
    }
    Plant(ds, a, b);
  }
  // Hot singles: same hot literal (the giant bucket), private anchor with
  // a unique value — candidates that can never be identified.
  for (int s = 0; s < hot - 2 * dups; ++s) {
    make_item("hot", make_anchor(fresh("anch_h")));
  }
  // Cold items: unique source values, so blocking keeps them all apart.
  for (int s = 0; s < items - hot; ++s) {
    make_item(fresh("cold"), make_anchor(fresh("anch_c")));
  }

  g.Finalize();
  std::sort(ds.planted.begin(), ds.planted.end());
  return ds;
}

SyntheticDataset GenerateNearDuplicates(const NearDuplicateConfig& config) {
  SyntheticDataset ds;
  Rng rng(config.seed);

  const int clusters = Scaled(config.num_clusters, config.scale, 1);
  const int k = std::max(2, config.cluster_size);

  Status st = ds.keys.AddFromDsl(
      "key K_prod for prod {\n"
      "  x -[pt]-> v0*\n"
      "  x -[pref]-> y:part\n"
      "}\n"
      "key K_part for part {\n"
      "  x -[pb]-> v0*\n"
      "}\n");
  assert(st.ok());
  (void)st;

  Graph& g = ds.graph;
  int uniq = 0;
  for (int c = 0; c < clusters; ++c) {
    std::string token = "cl_" + std::to_string(c);
    // The true pair hides at a random position inside the cluster.
    uint64_t pos = rng.Below(static_cast<uint64_t>(k - 1));
    std::vector<NodeId> prods, parts;
    for (int i = 0; i < k; ++i) {
      bool is_dup = static_cast<uint64_t>(i) == pos ||
                    static_cast<uint64_t>(i) == pos + 1;
      NodeId part = g.AddEntity("part");
      std::string pb = is_dup ? "pp_" + std::to_string(c)
                              : "pu_" + std::to_string(uniq++);
      g.AddTriple(part, "pb", g.AddValue(pb)).IgnoreError();
      NodeId prod = g.AddEntity("prod");
      g.AddTriple(prod, "pt", g.AddValue(token)).IgnoreError();
      g.AddTriple(prod, "pref", part).IgnoreError();
      prods.push_back(prod);
      parts.push_back(part);
    }
    Plant(ds, prods[pos], prods[pos + 1]);
    Plant(ds, parts[pos], parts[pos + 1]);
  }

  g.Finalize();
  std::sort(ds.planted.begin(), ds.planted.end());
  return ds;
}

// ---------------------------------------------------------------------------
// Delta generators
// ---------------------------------------------------------------------------

namespace {

/// An existing triple, with the predicate resolved to its string so the
/// GraphDelta staging API can consume it.
struct PickedTriple {
  NodeId s;
  std::string pred;
  NodeId o;
};

/// Entities that currently have at least one outgoing triple, ascending.
std::vector<NodeId> SubjectsWithEdges(const Graph& g) {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.IsEntity(n) && g.OutDegree(n) > 0) out.push_back(n);
  }
  return out;
}

PickedTriple PickTriple(const Graph& g, NodeId subject, Rng& rng) {
  auto edges = g.Out(subject);
  const Edge& e = edges[rng.Below(edges.size())];
  return {subject, g.interner().Resolve(e.pred), e.dst};
}

class UniformDeltaGen : public DeltaGenerator {
 public:
  explicit UniformDeltaGen(const DeltaGenConfig& config)
      : cfg_(config), rng_(config.seed) {}

  GraphDelta Next(const Graph& g) override {
    GraphDelta d(g);
    std::vector<NodeId> subjects = SubjectsWithEdges(g);
    std::vector<Symbol> types = g.EntityTypes();
    std::set<std::tuple<NodeId, std::string, NodeId>> staged_removals;
    for (size_t i = 0; i < cfg_.ops_per_batch; ++i) {
      if (!subjects.empty() && rng_.Chance(cfg_.remove_fraction)) {
        PickedTriple t =
            PickTriple(g, subjects[rng_.Below(subjects.size())], rng_);
        if (staged_removals.emplace(t.s, t.pred, t.o).second) {
          d.RemoveTriple(t.s, t.pred, t.o).IgnoreError();
        }
      } else if (!types.empty()) {
        NodeId e = d.AddEntity(
            g.interner().Resolve(types[rng_.Below(types.size())]));
        NodeId v = d.AddValue("wlv_" + std::to_string(counter_++));
        d.AddTriple(e, "wl_attr", v).IgnoreError();
      }
    }
    return d;
  }

 private:
  DeltaGenConfig cfg_;
  Rng rng_;
  uint64_t counter_ = 0;
};

class HubHeavyDeltaGen : public DeltaGenerator {
 public:
  explicit HubHeavyDeltaGen(const DeltaGenConfig& config)
      : cfg_(config), rng_(config.seed) {}

  GraphDelta Next(const Graph& g) override {
    GraphDelta d(g);
    // Rank entities by total degree and target only the top slice, so
    // every op lands inside the widest d-balls the graph has.
    std::vector<NodeId> entities;
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      if (g.IsEntity(n)) entities.push_back(n);
    }
    if (entities.empty()) return d;
    std::stable_sort(entities.begin(), entities.end(),
                     [&](NodeId a, NodeId b) {
                       size_t da = g.OutDegree(a) + g.InDegree(a);
                       size_t db = g.OutDegree(b) + g.InDegree(b);
                       return da != db ? da > db : a < b;
                     });
    size_t top = std::max<size_t>(
        1, static_cast<size_t>(entities.size() * cfg_.hub_fraction));
    std::set<std::tuple<NodeId, std::string, NodeId>> staged_removals;
    for (size_t i = 0; i < cfg_.ops_per_batch; ++i) {
      NodeId hub = entities[rng_.Below(top)];
      auto in = g.In(hub);
      auto out = g.Out(hub);
      if (rng_.Chance(cfg_.remove_fraction) && (in.size() + out.size()) > 0) {
        // Remove a random incident edge (in-edges store the source node
        // in Edge::dst, and sources are always entities).
        uint64_t pick = rng_.Below(in.size() + out.size());
        NodeId s, o;
        Symbol p;
        if (pick < out.size()) {
          s = hub;
          p = out[pick].pred;
          o = out[pick].dst;
        } else {
          s = in[pick - out.size()].dst;
          p = in[pick - out.size()].pred;
          o = hub;
        }
        std::string pred = g.interner().Resolve(p);
        if (staged_removals.emplace(s, pred, o).second) {
          d.RemoveTriple(s, pred, o).IgnoreError();
        }
      } else {
        // Attach a fresh entity to the hub, reusing the predicate and
        // spoke type its existing in-edges use (so the new edge lands in
        // the key alphabet whenever the hub is a key-reference target).
        std::string pred = "wl_spoke";
        std::string type = "wl_sat";
        if (!in.empty()) {
          const Edge& sample = in[rng_.Below(in.size())];
          pred = g.interner().Resolve(sample.pred);
          type = g.interner().Resolve(g.entity_type(sample.dst));
        }
        NodeId e = d.AddEntity(type);
        d.AddTriple(e, pred, hub).IgnoreError();
      }
    }
    return d;
  }

 private:
  DeltaGenConfig cfg_;
  Rng rng_;
};

class ChurnDeltaGen : public DeltaGenerator {
 public:
  explicit ChurnDeltaGen(const DeltaGenConfig& config) : cfg_(config) {}

  GraphDelta Next(const Graph& g) override {
    GraphDelta d(g);
    if (!pending_readd_.empty()) {
      // Re-add verbatim what the previous batch removed: the region's
      // derivations retract and re-derive, repeatedly.
      for (const PickedTriple& t : pending_readd_) {
        d.AddTriple(t.s, t.pred, t.o).IgnoreError();
      }
      region_ = std::move(pending_readd_);
      pending_readd_.clear();
      ++cycles_done_;
      return d;
    }
    if (cycles_done_ >= cfg_.churn_repeats || region_.empty()) {
      region_ = NextRegion(g);
      cycles_done_ = 0;
    }
    for (const PickedTriple& t : region_) {
      d.RemoveTriple(t.s, t.pred, t.o).IgnoreError();
    }
    pending_readd_ = std::move(region_);
    region_.clear();
    return d;
  }

 private:
  /// The out-triples (capped at ops_per_batch) of the next entity that
  /// has any, scanning round-robin from where the last region ended.
  std::vector<PickedTriple> NextRegion(const Graph& g) {
    std::vector<PickedTriple> out;
    size_t n = g.NumNodes();
    for (size_t step = 0; step < n; ++step) {
      NodeId e = static_cast<NodeId>((cursor_ + step) % n);
      if (!g.IsEntity(e) || g.OutDegree(e) == 0) continue;
      for (const Edge& edge : g.Out(e)) {
        out.push_back({e, g.interner().Resolve(edge.pred), edge.dst});
        if (out.size() >= cfg_.ops_per_batch) break;
      }
      cursor_ = (e + 1) % n;
      return out;
    }
    return out;
  }

  DeltaGenConfig cfg_;
  std::vector<PickedTriple> region_;
  std::vector<PickedTriple> pending_readd_;
  int cycles_done_ = 0;
  size_t cursor_ = 0;
};

}  // namespace

StatusOr<std::unique_ptr<DeltaGenerator>> MakeDeltaGenerator(
    std::string_view kind, const DeltaGenConfig& config) {
  if (kind == "uniform") {
    return std::unique_ptr<DeltaGenerator>(new UniformDeltaGen(config));
  }
  if (kind == "hub") {
    return std::unique_ptr<DeltaGenerator>(new HubHeavyDeltaGen(config));
  }
  if (kind == "churn") {
    return std::unique_ptr<DeltaGenerator>(new ChurnDeltaGen(config));
  }
  return Status::InvalidArgument("unknown delta generator kind '" +
                                 std::string(kind) +
                                 "' (expected uniform, hub, or churn)");
}

}  // namespace gkeys
