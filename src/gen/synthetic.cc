#include "gen/synthetic.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "common/rng.h"

namespace gkeys {

namespace {

/// Builds the DSL for one key. Level `i` of chain `group`; recursive keys
/// get a `ref` edge to the next level, the leaf key gets a second value
/// path instead.
std::string KeyDsl(int group, int level, int chain_length, int d) {
  std::string type = "T_" + std::to_string(group) + "_" + std::to_string(level);
  std::string name = "K_" + std::to_string(group) + "_" + std::to_string(level);
  auto path = [&](int path_id) {
    // x -[a_<g>_<i>_<p>_0]-> _q<p>1:AUX_1 -[..._1]-> … -> v<p>*
    std::string pred_base = "a_" + std::to_string(group) + "_" +
                            std::to_string(level) + "_" +
                            std::to_string(path_id) + "_";
    std::string out;
    std::string prev = "x";
    for (int hop = 0; hop < d - 1; ++hop) {
      std::string aux = "_q" + std::to_string(path_id) + std::to_string(hop);
      out += "  " + prev + " -[" + pred_base + std::to_string(hop) + "]-> " +
             aux + ":AUX_" + std::to_string(hop + 1) + "\n";
      prev = aux;
    }
    out += "  " + prev + " -[" + pred_base + std::to_string(d - 1) + "]-> v" +
           std::to_string(path_id) + "*\n";
    return out;
  };
  std::string dsl = "key " + name + " for " + type + " {\n" + path(0);
  if (level < chain_length - 1) {
    dsl += "  x -[ref_" + std::to_string(group) + "_" +
           std::to_string(level) + "]-> y:T_" + std::to_string(group) + "_" +
           std::to_string(level + 1) + "\n";
  } else {
    dsl += path(1);
  }
  dsl += "}\n";
  return dsl;
}

}  // namespace

SyntheticDataset GenerateSynthetic(const SyntheticConfig& config) {
  SyntheticDataset ds;
  Rng rng(config.seed);

  const int c = std::max(1, config.chain_length);
  const int d = std::max(1, config.radius);
  const int groups = std::max(1, config.num_groups);
  const int n = std::max(
      2, static_cast<int>(config.entities_per_type * config.scale));
  int dup_clusters = static_cast<int>(n * config.duplicate_fraction / 2);
  if (config.duplicate_fraction > 0 && dup_clusters == 0) dup_clusters = 1;
  const int singles = std::max(0, n - 2 * dup_clusters);

  // ---- Keys ----
  std::string dsl;
  for (int gi = 0; gi < groups; ++gi) {
    for (int lv = 0; lv < c; ++lv) dsl += KeyDsl(gi, lv, c, d);
  }
  Status st = ds.keys.AddFromDsl(dsl);
  assert(st.ok());
  (void)st;

  Graph& g = ds.graph;
  int unique_counter = 0;

  // Attaches a radius-d value path ending at `value` to entity `e`.
  auto attach_path = [&](NodeId e, int group, int level, int path_id,
                         const std::string& value) {
    std::string pred_base = "a_" + std::to_string(group) + "_" +
                            std::to_string(level) + "_" +
                            std::to_string(path_id) + "_";
    NodeId prev = e;
    for (int hop = 0; hop < d - 1; ++hop) {
      NodeId aux = g.AddEntity("AUX_" + std::to_string(hop + 1));
      g.AddTriple(prev, pred_base + std::to_string(hop), aux).IgnoreError();
      prev = aux;
    }
    g.AddTriple(prev, pred_base + std::to_string(d - 1),
                      g.AddValue(value)).IgnoreError();
  };

  // Builds one entity of T_<group>_<level> with its key structure.
  // `v0` is the shared (or unique) first attribute value; leaves get a
  // second attribute `v1`.
  auto make_entity = [&](int group, int level, const std::string& v0,
                         const std::string& v1) {
    std::string type =
        "T_" + std::to_string(group) + "_" + std::to_string(level);
    NodeId e = g.AddEntity(type);
    attach_path(e, group, level, 0, v0);
    if (level == c - 1) attach_path(e, group, level, 1, v1);
    return e;
  };

  auto uniq = [&](const char* prefix) {
    return std::string(prefix) + "_" + std::to_string(unique_counter++);
  };

  for (int gi = 0; gi < groups; ++gi) {
    // Built leaf-level first so references can point downward.
    // per level: the entities, in creation order.
    std::vector<std::vector<NodeId>> level_entities(c);
    // Cluster entity handles: cluster j -> (a, b) per level.
    std::vector<std::vector<std::pair<NodeId, NodeId>>> cluster(c);

    for (int lv = c - 1; lv >= 0; --lv) {
      cluster[lv].resize(dup_clusters);
      std::string ref_pred =
          "ref_" + std::to_string(gi) + "_" + std::to_string(lv);
      // Duplicate clusters: a and b share attribute values.
      for (int j = 0; j < dup_clusters; ++j) {
        std::string v0 = "dv_" + std::to_string(gi) + "_" +
                         std::to_string(j) + "_" + std::to_string(lv);
        std::string v1 = "dw_" + std::to_string(gi) + "_" + std::to_string(j);
        NodeId a = make_entity(gi, lv, v0, v1);
        NodeId b = make_entity(gi, lv, v0, v1);
        cluster[lv][j] = {a, b};
        level_entities[lv].push_back(a);
        level_entities[lv].push_back(b);
        if (a > b) std::swap(a, b);
        ds.planted.emplace_back(a, b);
        if (lv < c - 1) {
          auto [na, nb] = cluster[lv + 1][j];
          bool chained = rng.Chance(config.chained_fraction);
          if (chained) {
            // Resolves only after the next level's pair resolves.
            g.AddTriple(cluster[lv][j].first, ref_pred, na).IgnoreError();
            g.AddTriple(cluster[lv][j].second, ref_pred, nb).IgnoreError();
          } else {
            // Shared target: resolves immediately via node identity.
            g.AddTriple(cluster[lv][j].first, ref_pred, na).IgnoreError();
            g.AddTriple(cluster[lv][j].second, ref_pred, na).IgnoreError();
          }
        }
      }
      // Singles: unique values, random downward references.
      for (int s = 0; s < singles; ++s) {
        NodeId e = make_entity(gi, lv, uniq("sv"), uniq("sw"));
        level_entities[lv].push_back(e);
        if (lv < c - 1) {
          const auto& below = level_entities[lv + 1];
          g.AddTriple(e, ref_pred, below[rng.Below(below.size())]).IgnoreError();
        }
      }
    }

    // Noise edges: predicates disjoint from the key alphabet.
    if (config.noise_edges_per_entity > 0) {
      int npreds = std::max(1, config.noise_predicates);
      for (const auto& level : level_entities) {
        for (NodeId e : level) {
          for (int k = 0; k < config.noise_edges_per_entity; ++k) {
            std::string pred = "noise_" + std::to_string(rng.Below(npreds));
            NodeId v = g.AddValue("nv_" + std::to_string(rng.Below(
                                              static_cast<uint64_t>(n) * c)));
            g.AddTriple(e, pred, v).IgnoreError();
          }
        }
      }
    }
  }

  g.Finalize();
  std::sort(ds.planted.begin(), ds.planted.end());
  return ds;
}

}  // namespace gkeys
