#ifndef GKEYS_VERTEXCENTRIC_ENGINE_H_
#define GKEYS_VERTEXCENTRIC_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace gkeys {
namespace vertexcentric {

/// An asynchronous vertex-centric execution engine in the style of
/// GraphLab [31], used by the EMVC family (paper §5). Vertices are dense
/// ids; a vertex program runs whenever a message addressed to a vertex is
/// delivered. There are NO global supersteps or barriers: each of the `p`
/// workers drains its own mailbox shard independently (vertices are
/// hash-partitioned across workers, simulating machine placement), so a
/// long-running vertex never stalls unrelated vertices — the property that
/// lets EMVC avoid MapReduce's straggler blocking.
///
/// Termination detection: an atomic in-flight counter incremented on send
/// and decremented after a message is fully processed. When it reaches
/// zero all workers quiesce and Run() returns.
///
/// Handlers may send further messages via Context::Send (from any worker,
/// to any vertex). The handler may also *process a message inline* by
/// plain recursion — that is how EMOptVC's bounded-message optimization
/// trades parallel forking for sequential backtracking (§5.2).
template <typename Message>
class Engine {
 public:
  class Context;
  /// Vertex program: invoked once per delivered message.
  using Handler =
      std::function<void(Context&, uint32_t /*vertex*/, Message&&)>;

  explicit Engine(int p) : shards_(std::max(1, p)) {}

  /// Delivery context handed to handlers.
  class Context {
   public:
    /// Asynchronously delivers `msg` to `vertex`.
    void Send(uint32_t vertex, Message msg) {
      engine_->Post(vertex, std::move(msg));
    }
    /// Total messages sent so far (for the paper's message-count stats).
    uint64_t messages_sent() const {
      return engine_->sent_.load(std::memory_order_relaxed);
    }

   private:
    friend class Engine;
    explicit Context(Engine* e) : engine_(e) {}
    Engine* engine_;
  };

  /// Runs the handler over `seeds` and everything they transitively send.
  /// Returns the total number of messages processed.
  uint64_t Run(const std::vector<std::pair<uint32_t, Message>>& seeds,
               const Handler& handler) {
    handler_ = &handler;
    for (const auto& [v, m] : seeds) Post(v, Message(m));
    if (shards_.size() == 1) {
      // Single worker: drain on the calling thread. Spawning (and
      // joining) a std::thread costs ~100µs — real money for the
      // sub-millisecond incremental rematch runs.
      WorkerLoop(0);
      handler_ = nullptr;
      return processed_.load(std::memory_order_relaxed);
    }
    std::vector<std::thread> workers;
    workers.reserve(shards_.size());
    for (size_t w = 0; w < shards_.size(); ++w) {
      workers.emplace_back([this, w] { WorkerLoop(static_cast<int>(w)); });
    }
    for (auto& t : workers) t.join();
    handler_ = nullptr;
    return processed_.load(std::memory_order_relaxed);
  }

  uint64_t messages_sent() const {
    return sent_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    Mutex mu;
    CondVar cv;
    std::deque<std::pair<uint32_t, Message>> queue GKEYS_GUARDED_BY(mu);
  };

  void Post(uint32_t vertex, Message msg) {
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    sent_.fetch_add(1, std::memory_order_relaxed);
    Shard& s = shards_[vertex % shards_.size()];
    {
      MutexLock lock(s.mu);
      s.queue.emplace_back(vertex, std::move(msg));
    }
    s.cv.NotifyOne();
  }

  void WorkerLoop(int w) {
    Shard& s = shards_[w];
    Context ctx(this);
    for (;;) {
      std::pair<uint32_t, Message> item;
      {
        MutexLock lock(s.mu);
        // Wake periodically to observe global quiescence: this worker's
        // queue may stay empty while others still create work for it.
        while (s.queue.empty()) {
          if (in_flight_.load(std::memory_order_acquire) == 0) return;
          s.cv.WaitFor(lock, std::chrono::milliseconds(1));
        }
        item = std::move(s.queue.front());
        s.queue.pop_front();
      }
      (*handler_)(ctx, item.first, std::move(item.second));
      processed_.fetch_add(1, std::memory_order_relaxed);
      if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Possibly the last message system-wide: wake everyone so they can
        // re-check the termination condition.
        for (Shard& other : shards_) other.cv.NotifyAll();
      }
    }
  }

  std::vector<Shard> shards_;
  const Handler* handler_ = nullptr;
  std::atomic<uint64_t> in_flight_{0};
  std::atomic<uint64_t> sent_{0};
  std::atomic<uint64_t> processed_{0};
};

}  // namespace vertexcentric
}  // namespace gkeys

#endif  // GKEYS_VERTEXCENTRIC_ENGINE_H_
