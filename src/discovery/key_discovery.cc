#include "discovery/key_discovery.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace gkeys {

namespace {

/// Per-type attribute index: entity -> values per predicate, and
/// entity -> referenced entities per predicate.
struct TypeIndex {
  std::vector<NodeId> entities;
  // pred -> (entity -> sorted object nodes). Values and refs indexed
  // separately because they yield different pattern node kinds.
  std::map<Symbol, std::unordered_map<NodeId, std::vector<NodeId>>> values;
  std::map<Symbol, std::unordered_map<NodeId, std::vector<NodeId>>> refs;
  // Ref predicates homogeneous in target type (pred -> target type).
  std::map<Symbol, Symbol> ref_target_type;
};

TypeIndex BuildIndex(const Graph& g, Symbol type) {
  TypeIndex idx;
  auto entities = g.EntitiesOfType(type);
  idx.entities.assign(entities.begin(), entities.end());
  std::map<Symbol, bool> ref_homogeneous;
  for (NodeId e : idx.entities) {
    for (const Edge& edge : g.Out(e)) {
      if (g.IsValue(edge.dst)) {
        idx.values[edge.pred][e].push_back(edge.dst);
      } else {
        idx.refs[edge.pred][e].push_back(edge.dst);
        Symbol t = g.entity_type(edge.dst);
        auto it = idx.ref_target_type.find(edge.pred);
        if (it == idx.ref_target_type.end()) {
          idx.ref_target_type[edge.pred] = t;
          ref_homogeneous[edge.pred] = true;
        } else if (it->second != t) {
          ref_homogeneous[edge.pred] = false;
        }
      }
    }
  }
  // Drop heterogeneous ref predicates: they cannot type an entity var.
  for (auto it = idx.refs.begin(); it != idx.refs.end();) {
    if (!ref_homogeneous[it->first]) {
      idx.ref_target_type.erase(it->first);
      it = idx.refs.erase(it);
    } else {
      ++it;
    }
  }
  return idx;
}

/// Whether two entities share at least one object on predicate `pred`
/// (value equality for values, node identity for refs).
bool ShareObject(
    const std::unordered_map<NodeId, std::vector<NodeId>>& per_entity,
    NodeId a, NodeId b) {
  auto ia = per_entity.find(a);
  auto ib = per_entity.find(b);
  if (ia == per_entity.end() || ib == per_entity.end()) return false;
  for (NodeId va : ia->second) {
    for (NodeId vb : ib->second) {
      if (va == vb) return true;
    }
  }
  return false;
}

/// A candidate: a set of value predicates plus at most one ref predicate.
struct AttrSet {
  std::vector<Symbol> value_preds;
  Symbol ref_pred = kNoSymbol;

  int arity() const {
    return static_cast<int>(value_preds.size()) +
           (ref_pred == kNoSymbol ? 0 : 1);
  }
  bool Contains(const AttrSet& other) const {
    if (other.ref_pred != kNoSymbol && other.ref_pred != ref_pred) {
      return false;
    }
    for (Symbol p : other.value_preds) {
      if (!std::binary_search(value_preds.begin(), value_preds.end(), p)) {
        return false;
      }
    }
    return true;
  }
};

/// Does the candidate hold on the indexed type under node identity?
/// Violated iff two distinct entities coincide on every member attribute.
bool Holds(const TypeIndex& idx, const AttrSet& cand) {
  if (cand.value_preds.empty() && cand.ref_pred == kNoSymbol) return false;
  // Group entities by the first attribute's objects; only entities
  // sharing an object there can possibly coincide.
  const auto& first = cand.value_preds.empty()
                          ? idx.refs.at(cand.ref_pred)
                          : idx.values.at(cand.value_preds.front());
  std::unordered_map<NodeId, std::vector<NodeId>> by_object;
  for (const auto& [e, objs] : first) {
    for (NodeId o : objs) by_object[o].push_back(e);
  }
  for (const auto& [obj, members] : by_object) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        NodeId a = members[i], b = members[j];
        bool coincide = true;
        for (size_t k = 1; k < cand.value_preds.size() && coincide; ++k) {
          coincide = ShareObject(idx.values.at(cand.value_preds[k]), a, b);
        }
        if (coincide && cand.ref_pred != kNoSymbol &&
            !cand.value_preds.empty()) {
          coincide = ShareObject(idx.refs.at(cand.ref_pred), a, b);
        }
        if (coincide) return false;  // violation witness
      }
    }
  }
  return true;
}

/// Fraction of entities carrying every attribute of the candidate.
double Coverage(const TypeIndex& idx, const AttrSet& cand) {
  if (idx.entities.empty()) return 0.0;
  size_t covered = 0;
  for (NodeId e : idx.entities) {
    bool has_all = true;
    for (Symbol p : cand.value_preds) {
      if (idx.values.at(p).count(e) == 0) {
        has_all = false;
        break;
      }
    }
    if (has_all && cand.ref_pred != kNoSymbol &&
        idx.refs.at(cand.ref_pred).count(e) == 0) {
      has_all = false;
    }
    covered += has_all;
  }
  return static_cast<double>(covered) / idx.entities.size();
}

}  // namespace

std::vector<DiscoveredKey> DiscoverKeys(const Graph& g,
                                        std::string_view type,
                                        const DiscoveryConfig& config) {
  std::vector<DiscoveredKey> out;
  Symbol t = g.interner().Lookup(type);
  if (t == kNoSymbol) return out;
  TypeIndex idx = BuildIndex(g, t);
  if (idx.entities.size() < 2) return out;

  std::vector<Symbol> value_preds;
  for (const auto& [p, _] : idx.values) value_preds.push_back(p);

  std::vector<AttrSet> holding;  // minimal holding sets, for pruning

  auto consider = [&](AttrSet cand) {
    for (const AttrSet& h : holding) {
      if (cand.Contains(h)) return;  // superset of a holding key: prune
    }
    double cov = Coverage(idx, cand);
    if (cov < config.min_coverage) return;
    if (!Holds(idx, cand)) return;
    // Build the concrete pattern.
    Pattern p;
    int x = p.AddDesignated(type);
    std::string name = "disc_" + std::string(type);
    int vi = 0;
    for (Symbol pred : cand.value_preds) {
      const std::string& pname = g.interner().Resolve(pred);
      name += "_" + pname;
      p.AddTriple(x, pname, p.AddValueVar("v" + std::to_string(vi++))).IgnoreError();
    }
    if (cand.ref_pred != kNoSymbol) {
      const std::string& pname = g.interner().Resolve(cand.ref_pred);
      name += "_" + pname;
      int y = p.AddEntityVar(
          "y", g.interner().Resolve(idx.ref_target_type.at(cand.ref_pred)));
      p.AddTriple(x, pname, y).IgnoreError();
    }
    if (!p.Validate().ok()) return;
    DiscoveredKey dk{Key(name, std::move(p)), cov, cand.arity()};
    holding.push_back(cand);
    out.push_back(std::move(dk));
  };

  // Arity 1: single value attributes.
  for (Symbol p : value_preds) {
    consider(AttrSet{{p}, kNoSymbol});
  }
  // Arity 2+: value-attribute combinations (sets, ascending).
  if (config.max_attributes >= 2) {
    for (size_t i = 0; i < value_preds.size(); ++i) {
      for (size_t j = i + 1; j < value_preds.size(); ++j) {
        consider(AttrSet{{value_preds[i], value_preds[j]}, kNoSymbol});
      }
    }
  }
  if (config.max_attributes >= 3) {
    for (size_t i = 0; i < value_preds.size(); ++i) {
      for (size_t j = i + 1; j < value_preds.size(); ++j) {
        for (size_t k = j + 1; k < value_preds.size(); ++k) {
          consider(AttrSet{
              {value_preds[i], value_preds[j], value_preds[k]}, kNoSymbol});
        }
      }
    }
  }
  // Recursive candidates: one value attribute + one entity reference.
  if (config.include_recursive && config.max_attributes >= 2) {
    for (Symbol p : value_preds) {
      for (const auto& [r, _] : idx.refs) {
        consider(AttrSet{{p}, r});
      }
    }
  }

  std::sort(out.begin(), out.end(),
            [](const DiscoveredKey& a, const DiscoveredKey& b) {
              if (a.arity != b.arity) return a.arity < b.arity;
              return a.coverage > b.coverage;
            });
  return out;
}

KeySet DiscoverAllKeys(const Graph& g, const DiscoveryConfig& config) {
  KeySet keys;
  for (Symbol t : g.EntityTypes()) {
    if (g.EntitiesOfType(t).size() < 2) continue;
    for (DiscoveredKey& dk :
         DiscoverKeys(g, g.interner().Resolve(t), config)) {
      keys.Add(std::move(dk.key));
    }
  }
  return keys;
}

}  // namespace gkeys
