#ifndef GKEYS_DISCOVERY_KEY_DISCOVERY_H_
#define GKEYS_DISCOVERY_KEY_DISCOVERY_H_

#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "keys/key.h"

namespace gkeys {

/// Controls for key discovery.
struct DiscoveryConfig {
  /// Maximum number of attributes combined in one candidate key.
  int max_attributes = 2;
  /// Minimum fraction of the type's entities that must carry every
  /// attribute of a candidate for it to be reported (coverage).
  double min_coverage = 0.6;
  /// Also propose recursive candidates (value attribute + entity
  /// reference), checked under node identity.
  bool include_recursive = true;
};

/// A mined candidate key with its quality measures.
struct DiscoveredKey {
  Key key;
  /// Fraction of the type's entities matching the key's pattern.
  double coverage = 0.0;
  /// Number of attributes/references combined.
  int arity = 0;
};

/// Mines candidate keys for entities of `type` that HOLD on `g` (i.e.,
/// G |= Q(x)): combinations of up to max_attributes outgoing value
/// attributes — optionally plus one entity reference for recursive
/// candidates — such that no two distinct entities coincide on them.
///
/// This is a basic instantiation of the key-discovery problem the paper
/// defers to future work (§7): it searches the radius-1 fragment
/// exhaustively, preferring smaller keys (a superset of a holding key is
/// pruned). Candidates are checked under node identity, the sound
/// baseline: a key that holds under Eq0 can only gain violations as Eq
/// grows, so discovered keys should be re-validated after matching when
/// used for enforcement.
std::vector<DiscoveredKey> DiscoverKeys(const Graph& g,
                                        std::string_view type,
                                        const DiscoveryConfig& config = {});

/// Convenience: mines keys for every keyed-worthy type (any type with
/// ≥ 2 entities) and returns them as one KeySet.
KeySet DiscoverAllKeys(const Graph& g, const DiscoveryConfig& config = {});

}  // namespace gkeys

#endif  // GKEYS_DISCOVERY_KEY_DISCOVERY_H_
