#include "keys/key.h"

#include <algorithm>
#include <functional>
#include <set>

namespace gkeys {

Key::Key(std::string name, Pattern pattern)
    : name_(std::move(name)), pattern_(std::move(pattern)) {
  radius_ = pattern_.Radius();
  recursive_ = pattern_.IsRecursive();
  std::set<std::string> dep_types;
  for (const PatternNode& n : pattern_.nodes()) {
    if (n.kind == VarKind::kEntityVar) dep_types.insert(n.type);
  }
  dep_types_.assign(dep_types.begin(), dep_types.end());
}

void KeySet::Add(Key key) {
  total_size_ += key.size();
  by_type_[key.type()].push_back(static_cast<int>(keys_.size()));
  auto& deps = type_deps_[key.type()];
  for (const std::string& t : key.dependency_types()) {
    if (std::find(deps.begin(), deps.end(), t) == deps.end()) {
      deps.push_back(t);
    }
  }
  keys_.push_back(std::move(key));
}

Status KeySet::AddFromDsl(std::string_view dsl) {
  auto parsed = ParseKeys(dsl);
  if (!parsed.ok()) return parsed.status();
  for (auto& np : *parsed) Add(std::move(np.name), std::move(np.pattern));
  return Status::OK();
}

std::vector<int> KeySet::KeysForType(std::string_view type) const {
  auto it = by_type_.find(type);  // heterogeneous: no temporary string
  if (it == by_type_.end()) return {};
  return it->second;
}

std::vector<std::string> KeySet::KeyedTypes() const {
  std::vector<std::string> types;
  types.reserve(by_type_.size());
  for (const auto& [type, _] : by_type_) types.push_back(type);
  std::sort(types.begin(), types.end());
  return types;
}

int KeySet::MaxRadiusForType(std::string_view type) const {
  auto it = by_type_.find(type);  // heterogeneous: no temporary string
  if (it == by_type_.end()) return 0;
  int d = 0;
  for (int i : it->second) d = std::max(d, keys_[i].radius());
  return d;
}

int KeySet::MaxRadius() const {
  int d = 0;
  for (const Key& k : keys_) d = std::max(d, k.radius());
  return d;
}

int KeySet::LongestDependencyChain() const {
  // Longest simple path in the type-dependency digraph, counted in nodes.
  // Key sets are small (||Σ|| ≤ a few hundred, far fewer distinct types in
  // a chain), so exhaustive DFS with a visited set is fine.
  int best = keys_.empty() ? 0 : 1;
  std::set<std::string> on_path;
  std::function<int(const std::string&)> dfs =
      [&](const std::string& type) -> int {
    on_path.insert(type);
    int longest = 1;
    auto it = type_deps_.find(type);
    if (it != type_deps_.end()) {
      for (const std::string& next : it->second) {
        if (on_path.count(next)) continue;
        // Only follow dependencies into types that themselves carry keys;
        // a dangling entity variable cannot extend the chase chain.
        if (by_type_.count(next) == 0) continue;
        longest = std::max(longest, 1 + dfs(next));
      }
    }
    on_path.erase(type);
    return longest;
  };
  for (const auto& [type, _] : by_type_) {
    best = std::max(best, dfs(type));
  }
  return best;
}

std::string ToDsl(const Key& key) {
  const Pattern& p = key.pattern();
  auto render = [&](int idx) -> std::string {
    const PatternNode& n = p.nodes()[idx];
    switch (n.kind) {
      case VarKind::kDesignated:
        return "x";
      case VarKind::kEntityVar:
        return n.name + ":" + n.type;
      case VarKind::kValueVar:
        return n.name + "*";
      case VarKind::kWildcard:
        // DSL wildcards need the leading underscore; builder-made ones
        // may lack it.
        return (n.name.empty() || n.name.front() != '_' ? "_" + n.name
                                                        : n.name) +
               ":" + n.type;
      case VarKind::kConstant:
        return "\"" + n.name + "\"";
    }
    return "?";
  };
  std::string out = "key " + key.name() + " for " + key.type() + " {\n";
  for (const PatternTriple& t : p.triples()) {
    out += "  " + render(t.subject) + " -[" + t.pred + "]-> " +
           render(t.object) + "\n";
  }
  out += "}\n";
  return out;
}

std::string ToDsl(const KeySet& keys) {
  std::string out;
  for (const Key& k : keys.keys()) out += ToDsl(k);
  return out;
}

std::vector<std::string> KeySet::ValueBasedTypes() const {
  std::set<std::string> types;
  for (const Key& k : keys_) {
    if (!k.recursive()) types.insert(k.type());
  }
  return std::vector<std::string>(types.begin(), types.end());
}

}  // namespace gkeys
