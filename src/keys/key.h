#ifndef GKEYS_KEYS_KEY_H_
#define GKEYS_KEYS_KEY_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "pattern/parser.h"
#include "pattern/pattern.h"

namespace gkeys {

/// A key for entities of type τ: a graph pattern Q(x) whose designated
/// variable x has type τ (paper §2.2). Immutable after construction.
class Key {
 public:
  /// Builds a key from a validated pattern. Caches radius/recursiveness.
  Key(std::string name, Pattern pattern);

  const std::string& name() const { return name_; }
  const Pattern& pattern() const { return pattern_; }

  /// The entity type τ this key is defined on.
  const std::string& type() const { return pattern_.designated_type(); }

  /// |Q|: number of pattern triples.
  size_t size() const { return pattern_.size(); }

  /// d(Q, x): the pattern radius.
  int radius() const { return radius_; }

  /// True iff the key contains an entity variable other than x (§2.2).
  bool recursive() const { return recursive_; }

  /// Entity-variable types this key depends on (the types whose
  /// identification this key's firing may wait for). Sorted, deduplicated.
  const std::vector<std::string>& dependency_types() const {
    return dep_types_;
  }

 private:
  std::string name_;
  Pattern pattern_;
  int radius_;
  bool recursive_;
  std::vector<std::string> dep_types_;
};

/// A set Σ of keys with the derived structures the algorithms need:
/// keys grouped by the type they are defined on, per-type maximum radius
/// (the d used for d-neighbors, §4.1), and the type-dependency graph used
/// for the optimization strategies and the chain-length statistic c (§6).
class KeySet {
 public:
  KeySet() = default;

  /// Adds a key. The pattern must already be valid.
  void Add(Key key);
  void Add(std::string name, Pattern pattern) {
    Add(Key(std::move(name), std::move(pattern)));
  }

  /// Convenience: parse DSL text and add every key in it.
  Status AddFromDsl(std::string_view dsl);

  size_t count() const { return keys_.size(); }          // ||Σ||
  size_t TotalSize() const { return total_size_; }       // |Σ|
  bool empty() const { return keys_.empty(); }

  const Key& key(size_t i) const { return keys_[i]; }
  const std::vector<Key>& keys() const { return keys_; }

  /// Indices of keys defined on entity type `type` (by name).
  std::vector<int> KeysForType(std::string_view type) const;

  /// All types some key is defined on.
  std::vector<std::string> KeyedTypes() const;

  /// Whether any key is defined on `type`. Heterogeneous lookup: no
  /// std::string is materialized per call.
  bool HasKeyForType(std::string_view type) const {
    return by_type_.find(type) != by_type_.end();
  }

  /// The d-neighbor bound for entities of `type`: the maximum radius of
  /// the keys defined on it (0 if none).
  int MaxRadiusForType(std::string_view type) const;

  /// Maximum radius over all keys (the paper's parameter d).
  int MaxRadius() const;

  /// Length of the longest dependency chain (the paper's parameter c):
  /// the longest simple path in the directed type-dependency graph where
  /// τ → τ' iff some key on τ has an entity variable of type τ'. A single
  /// value-based key yields c = 1; mutual recursion (album ↔ artist)
  /// yields c = number of distinct types on the cycle.
  int LongestDependencyChain() const;

  /// Types on which a *value-based* key is defined — the seeds for the
  /// entity-dependency optimization (§4.2).
  std::vector<std::string> ValueBasedTypes() const;

  /// τ → { τ' : some key on τ references an entity variable of type τ' }.
  const StringMap<std::vector<std::string>>& TypeDependencies() const {
    return type_deps_;
  }

 private:
  std::vector<Key> keys_;
  StringMap<std::vector<int>> by_type_;
  StringMap<std::vector<std::string>> type_deps_;
  size_t total_size_ = 0;
};

/// Renders a key back into the DSL accepted by ParseKeys (round-trip
/// safe; used to persist discovered keys and by the CLI).
std::string ToDsl(const Key& key);

/// Renders a whole key set, one block per key, in declaration order.
std::string ToDsl(const KeySet& keys);

}  // namespace gkeys

#endif  // GKEYS_KEYS_KEY_H_
