#ifndef GKEYS_PATTERN_PARSER_H_
#define GKEYS_PATTERN_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "pattern/pattern.h"

namespace gkeys {

/// A named pattern produced by the parser.
struct NamedPattern {
  std::string name;
  Pattern pattern;
};

/// Parses the key DSL. Grammar (one or more keys per input):
///
///     # comment
///     key Q1 for album {
///       x -[name_of]-> n*
///       x -[recorded_by]-> y:artist
///       y -[based_in]-> "UK"
///       x -[published_by]-> _c:company
///     }
///
/// Node syntax inside a body:
///   * `x`            — the designated variable (type from the header);
///   * `name:type`    — an entity variable (recursive reference);
///   * `name*`        — a value variable;
///   * `_name:type`   — a wildcard (`_:type` auto-names it);
///   * `"literal"`    — a constant.
/// A node introduced with a type may later be referenced by bare `name`
/// (or `_name` for wildcards).
///
/// Returns the keys in declaration order, each validated.
StatusOr<std::vector<NamedPattern>> ParseKeys(std::string_view text);

/// Parses exactly one key; error if the input holds zero or several.
StatusOr<NamedPattern> ParseKey(std::string_view text);

}  // namespace gkeys

#endif  // GKEYS_PATTERN_PARSER_H_
