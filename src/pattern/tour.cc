#include "pattern/tour.h"

#include <functional>

namespace gkeys {

std::vector<TourStep> ComputeTour(const CompiledPattern& cp) {
  std::vector<TourStep> tour;
  tour.reserve(2 * cp.triples.size());
  std::vector<bool> traversed(cp.triples.size(), false);

  // Depth-first closed walk from x. Each triple is walked outward when
  // first seen and walked back immediately after its subtree (or
  // immediately, for back edges), so it contributes exactly two steps.
  std::function<void(int)> dfs = [&](int u) {
    for (int t : cp.incident[u]) {
      if (traversed[t]) continue;
      traversed[t] = true;
      const CompiledTriple& ct = cp.triples[t];
      int v = ct.subject == u ? ct.object : ct.subject;
      bool outward_forward = ct.object == v;  // moving subject -> object?
      tour.push_back(TourStep{t, outward_forward, v});
      dfs(v);
      tour.push_back(TourStep{t, !outward_forward, u});
    }
  };
  dfs(cp.designated);
  return tour;
}

}  // namespace gkeys
