#ifndef GKEYS_PATTERN_TOUR_H_
#define GKEYS_PATTERN_TOUR_H_

#include <vector>

#include "pattern/pattern.h"

namespace gkeys {

/// One hop of a traversal order P_Q (paper §5.1): follow pattern triple
/// `triple`; `forward` is true when moving subject→object. `to_node` is the
/// pattern node arrived at.
struct TourStep {
  int triple;
  bool forward;
  int to_node;
};

/// Computes the traversal order P_Q for a compiled pattern: a closed walk
/// over the undirected pattern graph that starts and ends at x and covers
/// every triple. Finding a shortest such tour is NP-complete (Chinese
/// Postman, paper §5.1), so — like the paper — we use a greedy strategy:
/// a depth-first closed walk that traverses each pattern triple exactly
/// twice (once outward, once on the way back), giving the 2|Q| bound of
/// Lemma 11.
///
/// Invariants (asserted by tests):
///   * the walk starts and ends at the designated variable;
///   * every triple appears exactly twice;
///   * consecutive steps share an endpoint (it is a walk);
///   * length == 2|Q|.
std::vector<TourStep> ComputeTour(const CompiledPattern& cp);

}  // namespace gkeys

#endif  // GKEYS_PATTERN_TOUR_H_
