#include "pattern/pattern.h"

#include <algorithm>
#include <deque>

namespace gkeys {

namespace {

bool IsEntityKinded(VarKind k) {
  return k == VarKind::kDesignated || k == VarKind::kEntityVar ||
         k == VarKind::kWildcard;
}

}  // namespace

int Pattern::AddNode(VarKind kind, std::string_view name,
                     std::string_view type) {
  int idx = static_cast<int>(nodes_.size());
  nodes_.push_back(PatternNode{kind, std::string(name), std::string(type)});
  incident_.clear();
  return idx;
}

int Pattern::AddDesignated(std::string_view type, std::string_view name) {
  int idx = AddNode(VarKind::kDesignated, name, type);
  designated_ = idx;
  return idx;
}

int Pattern::AddEntityVar(std::string_view name, std::string_view type) {
  return AddNode(VarKind::kEntityVar, name, type);
}

int Pattern::AddValueVar(std::string_view name) {
  return AddNode(VarKind::kValueVar, name, "");
}

int Pattern::AddWildcard(std::string_view name, std::string_view type) {
  return AddNode(VarKind::kWildcard, name, type);
}

int Pattern::AddConstant(std::string_view literal) {
  // Equal constants are one node (value equality).
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    if (nodes_[i].kind == VarKind::kConstant && nodes_[i].name == literal) {
      return i;
    }
  }
  return AddNode(VarKind::kConstant, literal, "");
}

Status Pattern::AddTriple(int subject, std::string_view pred, int object) {
  if (subject < 0 || subject >= static_cast<int>(nodes_.size()) ||
      object < 0 || object >= static_cast<int>(nodes_.size())) {
    return Status::InvalidArgument("pattern triple: node index out of range");
  }
  if (!IsEntityKinded(nodes_[subject].kind)) {
    return Status::InvalidArgument(
        "pattern triple: subject must be x, an entity variable, or a "
        "wildcard");
  }
  triples_.push_back(PatternTriple{subject, std::string(pred), object});
  incident_.clear();
  return Status::OK();
}

int Pattern::FindNode(std::string_view name) const {
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    if (nodes_[i].name == name) return i;
  }
  return -1;
}

Status Pattern::Validate() const {
  if (designated_ < 0) {
    return Status::InvalidArgument("pattern has no designated variable x");
  }
  int num_designated = 0;
  for (const auto& n : nodes_) {
    if (n.kind == VarKind::kDesignated) ++num_designated;
    if (IsEntityKinded(n.kind) && n.type.empty()) {
      return Status::InvalidArgument("entity-kinded pattern node '" + n.name +
                                     "' has no type");
    }
  }
  if (num_designated != 1) {
    return Status::InvalidArgument(
        "pattern must have exactly one designated variable");
  }
  if (triples_.empty()) {
    return Status::InvalidArgument("pattern has no triples");
  }
  // Duplicate names denote distinct nodes only if the builder was misused;
  // reject them so name-based lookup is unambiguous.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (size_t j = i + 1; j < nodes_.size(); ++j) {
      if (nodes_[i].kind != VarKind::kConstant &&
          nodes_[i].name == nodes_[j].name) {
        return Status::InvalidArgument("duplicate pattern node name '" +
                                       nodes_[i].name + "'");
      }
    }
  }
  // Connectivity + every node used: BFS from x over the undirected pattern.
  std::vector<bool> seen(nodes_.size(), false);
  std::deque<int> frontier{designated_};
  seen[designated_] = true;
  const auto& inc = IncidentTriples();
  while (!frontier.empty()) {
    int u = frontier.front();
    frontier.pop_front();
    for (int t : inc[u]) {
      int v = triples_[t].subject == u ? triples_[t].object
                                       : triples_[t].subject;
      if (!seen[v]) {
        seen[v] = true;
        frontier.push_back(v);
      }
    }
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!seen[i]) {
      return Status::InvalidArgument(
          "pattern is not connected: node '" + nodes_[i].name +
          "' is not reachable from x");
    }
  }
  return Status::OK();
}

int Pattern::Radius() const {
  std::vector<int> dist(nodes_.size(), -1);
  std::deque<int> frontier{designated_};
  dist[designated_] = 0;
  int radius = 0;
  const auto& inc = IncidentTriples();
  while (!frontier.empty()) {
    int u = frontier.front();
    frontier.pop_front();
    for (int t : inc[u]) {
      int v = triples_[t].subject == u ? triples_[t].object
                                       : triples_[t].subject;
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        radius = std::max(radius, dist[v]);
        frontier.push_back(v);
      }
    }
  }
  return radius;
}

bool Pattern::IsRecursive() const {
  return std::any_of(nodes_.begin(), nodes_.end(), [](const PatternNode& n) {
    return n.kind == VarKind::kEntityVar;
  });
}

const std::vector<std::vector<int>>& Pattern::IncidentTriples() const {
  if (incident_.size() != nodes_.size()) {
    incident_.assign(nodes_.size(), {});
    for (int t = 0; t < static_cast<int>(triples_.size()); ++t) {
      incident_[triples_[t].subject].push_back(t);
      if (triples_[t].object != triples_[t].subject) {
        incident_[triples_[t].object].push_back(t);
      }
    }
  }
  return incident_;
}

std::string Pattern::ToString() const {
  auto render = [&](int i) -> std::string {
    const PatternNode& n = nodes_[i];
    switch (n.kind) {
      case VarKind::kDesignated: return n.name + ":" + n.type;
      case VarKind::kEntityVar: return n.name + ":" + n.type;
      case VarKind::kValueVar: return n.name + "*";
      case VarKind::kWildcard: return "_" + n.name + ":" + n.type;
      case VarKind::kConstant: return "\"" + n.name + "\"";
    }
    return "?";
  };
  std::string out;
  for (const auto& t : triples_) {
    out += render(t.subject) + " -[" + t.pred + "]-> " + render(t.object);
    out += "\n";
  }
  return out;
}

CompiledPattern Compile(const Pattern& p, const Graph& g) {
  CompiledPattern cp;
  cp.source = &p;
  cp.designated = p.designated();
  cp.nodes.reserve(p.nodes().size());
  for (const PatternNode& n : p.nodes()) {
    CompiledNode cn;
    cn.kind = n.kind;
    if (IsEntityKinded(n.kind)) {
      cn.type = g.interner().Lookup(n.type);
      if (cn.type == kNoSymbol) cp.matchable = false;
    } else if (n.kind == VarKind::kConstant) {
      cn.constant_node = g.FindValue(n.name);
      if (cn.constant_node == kNoNode) cp.matchable = false;
    }
    cp.nodes.push_back(cn);
  }
  cp.triples.reserve(p.triples().size());
  for (const PatternTriple& t : p.triples()) {
    Symbol pred = g.interner().Lookup(t.pred);
    if (pred == kNoSymbol) cp.matchable = false;
    cp.triples.push_back(CompiledTriple{t.subject, pred, t.object});
  }
  cp.incident = p.IncidentTriples();
  if (!cp.matchable) return cp;

  // Guided-expansion plan: BFS from x; each new node is reached via one
  // incident triple whose other endpoint is already instantiated.
  std::vector<bool> placed(cp.nodes.size(), false);
  placed[cp.designated] = true;
  std::deque<int> frontier{cp.designated};
  while (!frontier.empty()) {
    int u = frontier.front();
    frontier.pop_front();
    for (int t : cp.incident[u]) {
      const CompiledTriple& ct = cp.triples[t];
      int v = ct.subject == u ? ct.object : ct.subject;
      if (placed[v]) continue;
      placed[v] = true;
      cp.plan.push_back(SearchStep{v, t, /*forward=*/ct.object == v});
      frontier.push_back(v);
    }
  }
  return cp;
}

}  // namespace gkeys
