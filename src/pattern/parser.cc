#include "pattern/parser.h"

#include <cctype>
#include <memory>
#include <unordered_map>

namespace gkeys {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Splits `line` into whitespace-separated words, honoring double quotes.
StatusOr<std::vector<std::string>> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    if (line[i] == '"') {
      size_t end = line.find('"', i + 1);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated string literal");
      }
      tokens.emplace_back(line.substr(i, end - i + 1));
      i = end + 1;
      continue;
    }
    size_t end = i;
    while (end < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[end]))) {
      ++end;
    }
    tokens.emplace_back(line.substr(i, end - i));
    i = end;
  }
  return tokens;
}

/// Per-key parsing state: maps node names to Pattern node indices.
class KeyBuilder {
 public:
  KeyBuilder(std::string name, std::string_view x_type)
      : name_(std::move(name)) {
    by_name_["x"] = pattern_.AddDesignated(x_type);
  }

  /// Resolves (or creates) the node denoted by `token`.
  StatusOr<int> Node(const std::string& token, int line_no) {
    if (token.size() >= 2 && token.front() == '"' && token.back() == '"') {
      return pattern_.AddConstant(token.substr(1, token.size() - 2));
    }
    if (token.back() == '*') {
      std::string name = token.substr(0, token.size() - 1);
      if (name.empty()) return Err("value variable needs a name", line_no);
      auto it = by_name_.find(name);
      if (it != by_name_.end()) return it->second;
      int idx = pattern_.AddValueVar(name);
      by_name_[name] = idx;
      return idx;
    }
    size_t colon = token.find(':');
    std::string name = colon == std::string::npos ? token
                                                  : token.substr(0, colon);
    std::string type = colon == std::string::npos ? ""
                                                  : token.substr(colon + 1);
    bool wildcard = !name.empty() && name.front() == '_';
    if (wildcard && name == "_") {
      if (type.empty()) return Err("anonymous wildcard needs a type", line_no);
      name = "_anon" + std::to_string(anon_counter_++);
    }
    auto it = by_name_.find(name);
    if (it != by_name_.end()) {
      // Re-reference; a repeated type annotation must agree.
      const PatternNode& existing = pattern_.nodes()[it->second];
      if (!type.empty() && existing.type != type) {
        return Err("node '" + name + "' re-declared with type '" + type +
                       "' (was '" + existing.type + "')",
                   line_no);
      }
      return it->second;
    }
    if (type.empty()) {
      return Err("unknown node '" + name +
                     "': first mention must carry :type (or be x, a value "
                     "variable name*, or a \"constant\")",
                 line_no);
    }
    int idx = wildcard ? pattern_.AddWildcard(name, type)
                       : pattern_.AddEntityVar(name, type);
    by_name_[name] = idx;
    return idx;
  }

  Status AddTripleLine(const std::vector<std::string>& tokens, int line_no) {
    // Expected shape: <node> -[pred]-> <node>
    if (tokens.size() != 3) {
      return Err("expected '<node> -[pred]-> <node>'", line_no).status();
    }
    const std::string& arrow = tokens[1];
    if (arrow.size() < 6 || arrow.substr(0, 2) != "-[" ||
        arrow.substr(arrow.size() - 3) != "]->") {
      return Err("malformed edge '" + arrow + "', expected -[pred]->",
                 line_no)
          .status();
    }
    std::string pred = arrow.substr(2, arrow.size() - 5);
    if (pred.empty()) return Err("empty predicate", line_no).status();
    auto subj = Node(tokens[0], line_no);
    if (!subj.ok()) return subj.status();
    auto obj = Node(tokens[2], line_no);
    if (!obj.ok()) return obj.status();
    return pattern_.AddTriple(*subj, pred, *obj);
  }

  StatusOr<NamedPattern> Finish() {
    GKEYS_RETURN_IF_ERROR(pattern_.Validate());
    return NamedPattern{name_, std::move(pattern_)};
  }

 private:
  static StatusOr<int> Err(std::string msg, int line_no) {
    return Status::ParseError("line " + std::to_string(line_no) + ": " +
                              std::move(msg));
  }

  std::string name_;
  Pattern pattern_;
  std::unordered_map<std::string, int> by_name_;
  int anon_counter_ = 0;
};

}  // namespace

StatusOr<std::vector<NamedPattern>> ParseKeys(std::string_view text) {
  std::vector<NamedPattern> result;
  std::unique_ptr<KeyBuilder> current;
  int line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view raw = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    size_t hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);
    std::string_view line = Trim(raw);
    if (line.empty()) continue;

    auto tokens_or = Tokenize(line);
    if (!tokens_or.ok()) return tokens_or.status();
    const auto& tokens = *tokens_or;

    if (tokens[0] == "key") {
      if (current) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": 'key' inside an unclosed key block");
      }
      // key <Name> for <type> {  — optionally followed, on the same line,
      // by triples and a closing brace: key A for t { x -[p]-> v* }
      if (tokens.size() < 5 || tokens[2] != "for" || tokens[4] != "{") {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": expected 'key <Name> for <type> {'");
      }
      current = std::make_unique<KeyBuilder>(tokens[1], tokens[3]);
      size_t rest_begin = 5;
      size_t rest_end = tokens.size();
      bool closes_inline =
          rest_end > rest_begin && tokens[rest_end - 1] == "}";
      if (closes_inline) --rest_end;
      for (size_t i = rest_begin; i + 3 <= rest_end; i += 3) {
        std::vector<std::string> triple(tokens.begin() + i,
                                        tokens.begin() + i + 3);
        GKEYS_RETURN_IF_ERROR(current->AddTripleLine(triple, line_no));
      }
      if ((rest_end - rest_begin) % 3 != 0) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": dangling tokens in inline key body");
      }
      if (closes_inline) {
        auto finished = current->Finish();
        if (!finished.ok()) return finished.status();
        result.push_back(std::move(*finished));
        current.reset();
      }
      continue;
    }
    if (tokens[0] == "}") {
      if (!current || tokens.size() != 1) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": unexpected '}'");
      }
      auto finished = current->Finish();
      if (!finished.ok()) return finished.status();
      result.push_back(std::move(*finished));
      current.reset();
      continue;
    }
    if (!current) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": triple outside a key block");
    }
    // A triple line may close the block with a trailing '}'.
    bool closes = tokens.back() == "}";
    std::vector<std::string> triple_tokens(
        tokens.begin(), closes ? tokens.end() - 1 : tokens.end());
    GKEYS_RETURN_IF_ERROR(current->AddTripleLine(triple_tokens, line_no));
    if (closes) {
      auto finished = current->Finish();
      if (!finished.ok()) return finished.status();
      result.push_back(std::move(*finished));
      current.reset();
    }
  }
  if (current) return Status::ParseError("unterminated key block");
  if (result.empty()) return Status::ParseError("no keys found");
  return result;
}

StatusOr<NamedPattern> ParseKey(std::string_view text) {
  auto keys = ParseKeys(text);
  if (!keys.ok()) return keys.status();
  if (keys->size() != 1) {
    return Status::ParseError("expected exactly one key, found " +
                              std::to_string(keys->size()));
  }
  return std::move((*keys)[0]);
}

}  // namespace gkeys
