#ifndef GKEYS_PATTERN_PATTERN_H_
#define GKEYS_PATTERN_PATTERN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace gkeys {

/// The kinds of nodes a graph pattern Q(x) may contain (paper §2.1):
///   * designated variable x       — the entity being identified;
///   * entity variable  y          — must map to entities identified as the
///                                   same (node identity / Eq); makes the
///                                   key recursively defined;
///   * value variable   y*         — must map to equal values;
///   * wildcard         ȳ          — must map to same-type entities, whose
///                                   identity is NOT checked;
///   * constant         d          — a literal value-binding condition.
enum class VarKind : uint8_t {
  kDesignated,
  kEntityVar,
  kValueVar,
  kWildcard,
  kConstant,
};

/// One node of a pattern. Nodes with the same name are the same node; the
/// builder below enforces unique names.
struct PatternNode {
  VarKind kind;
  std::string name;  // variable name, or the literal text for constants
  std::string type;  // entity type for designated/entity-var/wildcard
};

/// One pattern triple (s_Q, p_Q, o_Q): indices into the node list plus a
/// predicate name.
struct PatternTriple {
  int subject;
  std::string pred;
  int object;
};

/// A graph pattern Q(x): a connected set of pattern triples with one
/// designated entity variable x (paper §2.1). Build with the Add* methods,
/// then call Validate() once; all matchers require a valid pattern.
class Pattern {
 public:
  Pattern() = default;

  // ---- Builder ----

  /// Adds the designated variable x of entity type `type`. Must be called
  /// exactly once. Returns its node index.
  int AddDesignated(std::string_view type, std::string_view name = "x");

  /// Adds an entity variable (recursive reference) of entity type `type`.
  int AddEntityVar(std::string_view name, std::string_view type);

  /// Adds a value variable.
  int AddValueVar(std::string_view name);

  /// Adds a wildcard of entity type `type`.
  int AddWildcard(std::string_view name, std::string_view type);

  /// Adds a constant literal node. Equal literals share one node.
  int AddConstant(std::string_view literal);

  /// Adds pattern triple (nodes[subject], pred, nodes[object]).
  Status AddTriple(int subject, std::string_view pred, int object);

  /// Checks structural invariants: exactly one designated variable, all
  /// subjects entity-kinded, at least one triple, every node used by some
  /// triple, connectivity of the (undirected) pattern graph.
  Status Validate() const;

  // ---- Accessors ----

  const std::vector<PatternNode>& nodes() const { return nodes_; }
  const std::vector<PatternTriple>& triples() const { return triples_; }

  /// Index of the designated variable, or -1 if not added yet.
  int designated() const { return designated_; }

  /// Entity type of the designated variable (the type this key is for).
  const std::string& designated_type() const {
    return nodes_[designated_].type;
  }

  /// |Q|: the number of triples.
  size_t size() const { return triples_.size(); }

  /// Node index by name, or -1.
  int FindNode(std::string_view name) const;

  /// d(Q, x): the longest undirected distance from x to any pattern node
  /// (paper Table 1). Requires a valid pattern.
  int Radius() const;

  /// A key is recursively defined iff it contains an entity variable other
  /// than x, and value-based otherwise (paper §2.2).
  bool IsRecursive() const;

  /// Triple indices incident to each node (both directions), in triple
  /// order. Computed on demand and cached.
  const std::vector<std::vector<int>>& IncidentTriples() const;

  /// Human-readable rendering, one triple per line.
  std::string ToString() const;

 private:
  int AddNode(VarKind kind, std::string_view name, std::string_view type);

  std::vector<PatternNode> nodes_;
  std::vector<PatternTriple> triples_;
  int designated_ = -1;
  mutable std::vector<std::vector<int>> incident_;  // lazy cache
};

// ---------------------------------------------------------------------------
// Compiled form: a pattern bound to a concrete graph's symbol table, plus a
// guided search plan. All matchers (EvalMR search, VF2, pairing, EMVC tour
// propagation) consume CompiledPattern.
// ---------------------------------------------------------------------------

/// A pattern node with graph-resolved symbols.
struct CompiledNode {
  VarKind kind;
  Symbol type = kNoSymbol;          // entity type symbol (entity-kinded nodes)
  NodeId constant_node = kNoNode;   // graph value node for constants
};

/// A pattern triple with the predicate resolved to a graph symbol.
struct CompiledTriple {
  int subject;
  Symbol pred;
  int object;
};

/// One step of the guided search plan: instantiate `node` by following
/// `via_triple` from its already-instantiated other endpoint. `forward`
/// is true when the new node is the triple's object.
struct SearchStep {
  int node;
  int via_triple;
  bool forward;
};

/// A pattern compiled against a specific graph.
struct CompiledPattern {
  const Pattern* source = nullptr;
  std::vector<CompiledNode> nodes;
  std::vector<CompiledTriple> triples;
  int designated = 0;
  /// False when some predicate / type / constant does not occur in the
  /// graph at all — the pattern can never match and matchers return early.
  bool matchable = true;
  /// Guided expansion order: every node except x, each anchored to an
  /// earlier-instantiated node (BFS from x). Empty iff !matchable.
  std::vector<SearchStep> plan;
  /// For each pattern node, incident triple indices (mirrors
  /// Pattern::IncidentTriples, kept here so matchers need only this struct).
  std::vector<std::vector<int>> incident;
};

/// Binds `p` (which must be valid) to `g`'s symbols and builds the search
/// plan. Cheap; called once per (key, graph) pair by the algorithms.
CompiledPattern Compile(const Pattern& p, const Graph& g);

}  // namespace gkeys

#endif  // GKEYS_PATTERN_PATTERN_H_
