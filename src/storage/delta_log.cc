#include "storage/delta_log.h"

#include <cstring>
#include <fstream>
#include <utility>

#include "common/endian.h"
#include "common/hash.h"
#include "storage/file_ops.h"

namespace gkeys {
namespace storage {

namespace {

constexpr char kMagic[8] = {'G', 'K', 'E', 'Y', 'S', 'W', 'A', 'L'};

/// Frames one record: be32 length, be64 FNV-1a-64 over (length bytes ++
/// payload), payload. Checksumming the length bytes too means a bit flip
/// in the length is caught the same way as one in the payload.
std::string FrameRecord(std::string_view payload) {
  std::string rec;
  rec.reserve(DeltaLog::kRecordHeaderBytes + payload.size());
  PutBe32(rec, static_cast<uint32_t>(payload.size()));
  uint64_t sum = Fnv1a64(payload, Fnv1a64(std::string_view(rec.data(), 4)));
  PutBe64(rec, sum);
  rec.append(payload);
  return rec;
}

/// Does a complete, checksum-valid record start at `off`?
bool ValidRecordAt(std::string_view file, size_t off, uint32_t* len_out) {
  if (file.size() - off < DeltaLog::kRecordHeaderBytes) return false;
  uint32_t len = GetBe32(file.data() + off);
  if (len > file.size() - off - DeltaLog::kRecordHeaderBytes) return false;
  uint64_t stored = GetBe64(file.data() + off + 4);
  uint64_t sum = Fnv1a64(file.substr(off + DeltaLog::kRecordHeaderBytes, len),
                         Fnv1a64(file.substr(off, 4)));
  if (sum != stored) return false;
  *len_out = len;
  return true;
}

StatusOr<std::string> SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good())
    return Status::IoError("cannot open delta log " + path + ": " +
                           std::strerror(errno));
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad())
    return Status::IoError("cannot read delta log " + path);
  return bytes;
}

}  // namespace

StatusOr<std::unique_ptr<DeltaLog>> DeltaLog::Create(std::string path,
                                                     uint64_t generation) {
  std::string header;
  header.reserve(kHeaderBytes);
  header.append(kMagic, sizeof(kMagic));
  PutBe32(header, kFormatVersion);
  PutBe64(header, generation);

  auto fd = fileops::OpenForWrite(path, /*truncate=*/true, /*append=*/false);
  if (!fd.ok()) return fd.status();
  Status st = fileops::WriteFull(*fd, header, path);
  if (st.ok()) st = fileops::Fsync(*fd, path);
  if (st.ok()) st = fileops::FsyncParentDir(path);
  if (!st.ok()) {
    fileops::Close(*fd);
    return st;
  }
  return std::unique_ptr<DeltaLog>(
      new DeltaLog(std::move(path), generation, *fd));
}

StatusOr<DeltaLog::ReplayResult> DeltaLog::Replay(const std::string& path) {
  auto bytes = SlurpFile(path);
  if (!bytes.ok()) return bytes.status();
  std::string_view file = *bytes;

  ReplayResult out;
  if (file.size() < kHeaderBytes) {
    // The header write never became durable: the log holds nothing that
    // was ever acknowledged — a clean no-op (the PR-6 empty-delta
    // short-circuit, mirrored at the log level).
    out.truncated = file.empty() ? 0 : 1;
    return out;
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0)
    return Status::ParseError("delta log " + path +
                              ": bad magic (not a gkeys delta log)");
  uint32_t version = GetBe32(file.data() + 8);
  if (version != kFormatVersion)
    return Status::ParseError(
        "delta log " + path + ": format version " + std::to_string(version) +
        " unsupported (this build reads version " +
        std::to_string(kFormatVersion) + ")");
  out.has_header = true;
  out.generation = GetBe64(file.data() + 12);
  out.valid_bytes = kHeaderBytes;

  size_t off = kHeaderBytes;
  while (off < file.size()) {
    uint32_t len = 0;
    if (ValidRecordAt(file, off, &len)) {
      out.records.emplace_back(file.substr(off + kRecordHeaderBytes, len));
      off += kRecordHeaderBytes + len;
      out.valid_bytes = off;
      continue;
    }
    // Bad record. Torn tail (crash mid-append, never acknowledged) or a
    // corrupted acknowledged batch? Later appends prove earlier acks, so
    // scan forward for any complete valid record — the bad length field
    // cannot be trusted to find the next frame, hence byte-by-byte.
    for (size_t probe = off + 1; probe < file.size(); ++probe) {
      uint32_t probe_len = 0;
      if (ValidRecordAt(file, probe, &probe_len)) {
        return Status::DataLoss(
            "delta log " + path + ": record at byte " + std::to_string(off) +
            " is corrupt but a later valid record exists at byte " +
            std::to_string(probe) +
            " — an acknowledged batch is unrecoverable");
      }
    }
    out.truncated = 1;
    break;
  }
  return out;
}

StatusOr<std::unique_ptr<DeltaLog>> DeltaLog::OpenForAppend(
    std::string path, ReplayResult* replayed) {
  auto replay = Replay(path);
  if (!replay.ok()) return replay.status();
  if (!replay->has_header)
    return Status::ParseError("delta log " + path +
                              ": no durable header; Create() a fresh log");
  if (replay->truncated > 0) {
    // Drop the torn tail so the next record starts on a clean frame.
    GKEYS_RETURN_IF_ERROR(fileops::Truncate(path, replay->valid_bytes));
  }
  auto fd = fileops::OpenForWrite(path, /*truncate=*/false, /*append=*/true);
  if (!fd.ok()) return fd.status();
  auto log = std::unique_ptr<DeltaLog>(
      new DeltaLog(std::move(path), replay->generation, *fd));
  log->records_appended_ = replay->records.size();
  if (replayed != nullptr) *replayed = std::move(*replay);
  return log;
}

DeltaLog::~DeltaLog() {
  if (fd_ >= 0) fileops::Close(fd_);
}

Status DeltaLog::Append(std::string_view payload) {
  if (poisoned_)
    return Status::FailedPrecondition(
        "delta log " + path_ +
        ": a previous append failed (possible torn tail); rotate to a new "
        "generation before appending again");
  std::string rec = FrameRecord(payload);
  Status st = fileops::WriteFull(fd_, rec, path_);
  if (st.ok()) st = fileops::Fsync(fd_, path_);
  if (!st.ok()) {
    poisoned_ = true;
    return st;
  }
  ++records_appended_;
  return Status::OK();
}

// ---- GraphDelta payload codec -----------------------------------------

std::string EncodeDelta(const GraphDelta& delta) {
  std::string out;
  PutVarint(out, delta.new_nodes().size());
  for (const GraphDelta::NewNode& n : delta.new_nodes()) {
    out.push_back(n.kind == NodeKind::kEntity ? 'e' : 'v');
    PutVarint(out, n.label.size());
    out.append(n.label);
  }
  auto put_triples = [&out](const std::vector<GraphDelta::DeltaTriple>& ts) {
    PutVarint(out, ts.size());
    for (const GraphDelta::DeltaTriple& t : ts) {
      PutVarint(out, t.subject);
      PutVarint(out, t.pred.size());
      out.append(t.pred);
      PutVarint(out, t.object);
    }
  };
  put_triples(delta.added());
  put_triples(delta.removed());
  return out;
}

StatusOr<GraphDelta> DecodeDelta(std::string_view bytes, const Graph& base) {
  auto corrupt = [](const std::string& what) {
    return Status::ParseError("corrupt delta record: " + what);
  };
  ByteReader r(bytes);
  GraphDelta delta(base);

  uint64_t num_new = 0;
  if (!r.ReadVarint(&num_new) || num_new > bytes.size())
    return corrupt("bad new-node count");
  for (uint64_t i = 0; i < num_new; ++i) {
    uint8_t kind = 0;
    uint64_t len = 0;
    std::string_view label;
    if (!r.ReadU8(&kind) || (kind != 'e' && kind != 'v') ||
        !r.ReadVarint(&len) || !r.ReadBytes(len, &label)) {
      return corrupt("bad new-node entry");
    }
    // Replaying the staging calls in order reproduces the original
    // staged NodeIds: AddEntity/AddValue assign ids sequentially from
    // the base node count, and every serialized new node was a distinct
    // staged node (AddValue deduplication happened before staging).
    if (kind == 'e') {
      delta.AddEntity(label);
    } else {
      delta.AddValue(label);
    }
  }

  auto read_triples = [&](bool adding) -> Status {
    uint64_t count = 0;
    if (!r.ReadVarint(&count) || count > bytes.size())
      return corrupt("bad triple count");
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t s = 0, o = 0;
      uint64_t plen = 0;
      std::string_view pred;
      if (!r.ReadVarint32(&s) || !r.ReadVarint(&plen) ||
          !r.ReadBytes(plen, &pred) || !r.ReadVarint32(&o)) {
        return corrupt("bad triple entry");
      }
      Status st = adding ? delta.AddTriple(s, pred, o)
                         : delta.RemoveTriple(s, pred, o);
      if (!st.ok())
        return corrupt("triple rejected by staging: " + st.message());
    }
    return Status::OK();
  };
  GKEYS_RETURN_IF_ERROR(read_triples(/*adding=*/true));
  GKEYS_RETURN_IF_ERROR(read_triples(/*adding=*/false));
  if (!r.AtEnd()) return corrupt("trailing bytes");
  return delta;
}

}  // namespace storage
}  // namespace gkeys
