#ifndef GKEYS_STORAGE_FILE_OPS_H_
#define GKEYS_STORAGE_FILE_OPS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace gkeys {
namespace storage {
namespace fileops {

/// The faultable file primitives MmapStore and DeltaLog write through.
/// Production behavior is the plain POSIX call (with the full-write /
/// EINTR loop the raw syscalls need); tests install a FaultInjector to
/// script the Nth write failing with ENOSPC, a short (torn) write, a bit
/// flip that reaches disk, or a hard crash point after which every later
/// operation fails — which is how the crash-point enumeration harness
/// walks a save → append×k → save schedule and proves recovery lands on
/// exactly the last durable state at every point.
///
/// Durability contract the callers build on:
///   - WriteFull returns OK only when every byte was accepted by the
///     kernel (short writes and EINTR are retried, not surfaced).
///   - Fsync / FsyncDir return OK only when the kernel acknowledged the
///     flush — an acknowledged record or rename survives a crash.
///   - Rename is atomic; combined with "fsync the temp file first, fsync
///     the parent directory after", a crash never leaves a half-replaced
///     file behind the old name.

enum class OpKind : uint8_t {
  kOpen = 0,
  kWrite,
  kFsync,
  kRename,
  kFsyncDir,
  kTruncate,
};
const char* OpKindName(OpKind kind);

/// What the injector tells one faultable primitive to do.
struct FaultAction {
  /// Nonzero: fail the op with this errno (nothing is performed, except
  /// see write_prefix below).
  int fail_errno = 0;
  /// kWrite with fail_errno set: persist this many leading bytes before
  /// failing — a torn write whose prefix reached the file.
  size_t write_prefix = 0;
  /// kWrite only: XOR this mask into the buffer byte at flip_at before
  /// writing, so the corruption reaches disk and only checksums can
  /// catch it. Independent of fail_errno (the write itself succeeds).
  uint8_t flip_mask = 0;
  size_t flip_at = 0;
};

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  /// Consulted before every faultable primitive; return a default
  /// FaultAction to let the op proceed.
  virtual FaultAction OnOp(OpKind kind, const std::string& path) = 0;
};

/// Installs a process-wide injector (nullptr restores production
/// behavior). Test-only and not synchronized: install before exercising
/// the storage layer, from the thread that will drive it.
void SetFaultInjector(FaultInjector* injector);
FaultInjector* GetFaultInjector();

/// A scriptable injector covering the fault menu the tests need: fail
/// the `fail_at`-th faultable op (0-based, counted across every kind, or
/// only ops of `only_kind` when set); optionally enter a crashed state
/// where all later ops fail EIO — the in-process stand-in for SIGKILL,
/// after which the test discards its in-memory state and runs recovery
/// on whatever reached the filesystem.
class ScriptedFaultInjector : public FaultInjector {
 public:
  int64_t fail_at = -1;  // -1 = never fire (pure op counting)
  bool has_kind_filter = false;
  OpKind only_kind = OpKind::kWrite;
  FaultAction action{/*fail_errno=*/5 /*EIO*/};
  bool crash_after = false;

  /// Faultable ops observed so far (matching the kind filter). A dry run
  /// with fail_at = -1 counts the injection points of a schedule; the
  /// harness then replays it once per point.
  int64_t ops_seen = 0;
  bool fired = false;
  bool crashed = false;

  FaultAction OnOp(OpKind kind, const std::string& path) override;
};

/// RAII installer so a test failure cannot leak an injector into later
/// tests.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* injector) {
    SetFaultInjector(injector);
  }
  ~ScopedFaultInjector() { SetFaultInjector(nullptr); }
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;
};

// ---- Faultable primitives ---------------------------------------------

/// Opens `path` for writing (O_CREAT; O_TRUNC or O_APPEND per flags).
StatusOr<int> OpenForWrite(const std::string& path, bool truncate,
                           bool append);
/// Opens `path` read-only. Not faultable: reads are not durability
/// points, so routing them here keeps the crash-point op counts of a
/// write schedule stable while still funneling every file descriptor
/// through this seam (the repo linter bans raw ::open elsewhere).
StatusOr<int> OpenForRead(const std::string& path);
/// Writes all of `data`, looping over EINTR and short writes. IoError
/// (with the op's errno) when the kernel rejects bytes.
Status WriteFull(int fd, std::string_view data, const std::string& path);
Status Fsync(int fd, const std::string& path);
Status Rename(const std::string& from, const std::string& to);
/// fsyncs the directory containing `path` (the file's parent), making a
/// rename or creation of `path` itself durable.
Status FsyncParentDir(const std::string& path);
Status Truncate(const std::string& path, uint64_t size);
/// Not faultable: closing is cleanup, never a durability point.
void Close(int fd);

}  // namespace fileops
}  // namespace storage
}  // namespace gkeys

#endif  // GKEYS_STORAGE_FILE_OPS_H_
