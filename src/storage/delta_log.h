#ifndef GKEYS_STORAGE_DELTA_LOG_H_
#define GKEYS_STORAGE_DELTA_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "graph/delta.h"
#include "graph/graph.h"

namespace gkeys {
namespace storage {

/// Write-ahead delta log: the durability gap-filler between snapshots.
/// Snapshot::Save is expensive (it rewrites the whole session), so a
/// long-running ingest pipeline appends each acknowledged GraphDelta
/// batch here instead; a crash then loses nothing — recovery replays the
/// surviving records on top of the base snapshot (see storage/recovery.h).
///
/// File layout (all integers big-endian):
///
///     [0,  8)  magic "GKEYSWAL"
///     [8, 12)  format version (currently 1)
///     [12,20)  generation — ties the log to the snapshot it extends
///              (snap.<gen>.gks in a DurableDir); recovery refuses to
///              replay a log onto a different generation's snapshot
///     then, per appended record:
///              be32 payload length
///              be64 FNV-1a-64 over (the 4 length bytes ++ payload)
///              payload bytes (opaque to the log; DurableDir frames
///              GraphDelta batches, see EncodeDelta below)
///
/// Durability contract: Append returns OK only after the record's bytes
/// were fully written AND fsync'd — OK means ACKNOWLEDGED, and an
/// acknowledged record survives any later crash. A failed Append poisons
/// the log (the file may end in a torn record); callers rotate to a new
/// generation via Snapshot save, which starts a fresh log.
///
/// Recovery contract (Replay): records are read in order up to the first
/// bad one. A bad record at the tail — incomplete header, payload past
/// EOF, or checksum mismatch with nothing valid after it — is a torn,
/// UNACKNOWLEDGED tail: it is counted in `truncated` and dropped, never
/// an error. A checksum mismatch FOLLOWED by another valid record is a
/// mid-log corruption of an acknowledged batch (later appends prove the
/// bad one was acked first): Replay returns kDataLoss, because the
/// durable state can no longer be reconstructed exactly.
class DeltaLog {
 public:
  static constexpr uint32_t kFormatVersion = 1;
  static constexpr size_t kHeaderBytes = 20;
  static constexpr size_t kRecordHeaderBytes = 12;

  /// What Replay recovered from a log file.
  struct ReplayResult {
    /// Payloads of the valid record prefix, in append order.
    std::vector<std::string> records;
    /// Torn tail records dropped (0 or 1: a tail tear is one record).
    size_t truncated = 0;
    /// Byte length of the valid prefix (header + surviving records) —
    /// what OpenForAppend truncates the file to before appending.
    uint64_t valid_bytes = 0;
    /// False for a zero-length or sub-header file (a log that was
    /// created but whose header write never became durable): such a log
    /// replays as a clean no-op with no generation to check.
    bool has_header = false;
    uint64_t generation = 0;
  };

  /// Creates a fresh log for `generation` at `path` (truncating any
  /// previous file), writing and fsyncing the header and fsyncing the
  /// parent directory so the empty log itself survives a crash.
  static StatusOr<std::unique_ptr<DeltaLog>> Create(std::string path,
                                                    uint64_t generation);

  /// Reads every surviving record of the log at `path`. IoError when the
  /// file cannot be opened or read (recovery checks existence first and
  /// treats a missing log as a clean no-op). See the recovery contract
  /// above for kDataLoss on mid-log corruption.
  static StatusOr<ReplayResult> Replay(const std::string& path);

  /// Opens an existing log for appending: Replay, truncate the file to
  /// the valid prefix (dropping a torn tail so later appends re-frame
  /// cleanly), then position at the end. `replayed` (optional) receives
  /// the surviving records.
  static StatusOr<std::unique_ptr<DeltaLog>> OpenForAppend(
      std::string path, ReplayResult* replayed);

  ~DeltaLog();
  DeltaLog(const DeltaLog&) = delete;
  DeltaLog& operator=(const DeltaLog&) = delete;

  /// Appends one checksummed record. OK = the record is durable
  /// (acknowledged). After any failure the log is poisoned: every later
  /// Append returns FailedPrecondition (rotate to a new generation).
  Status Append(std::string_view payload);

  uint64_t generation() const { return generation_; }
  const std::string& path() const { return path_; }
  size_t records_appended() const { return records_appended_; }

 private:
  DeltaLog(std::string path, uint64_t generation, int fd)
      : path_(std::move(path)), generation_(generation), fd_(fd) {}

  std::string path_;
  uint64_t generation_ = 0;
  int fd_ = -1;
  bool poisoned_ = false;
  size_t records_appended_ = 0;
};

// ---- GraphDelta payload codec -----------------------------------------

/// Serializes a staged GraphDelta (new nodes, added and removed triples)
/// into a compact varint-packed payload. The encoding captures staging
/// ORDER, so DecodeDelta replays it against the same base graph and
/// reproduces identical staged NodeIds — byte-identical downstream
/// Apply / Patch / Rematch.
std::string EncodeDelta(const GraphDelta& delta);

/// Rebuilds the delta against `base` (which must be the graph the delta
/// was staged on, in the same pre-Apply state). Fully bounds-checked:
/// corrupt payloads return ParseError, never crash.
StatusOr<GraphDelta> DecodeDelta(std::string_view bytes, const Graph& base);

}  // namespace storage
}  // namespace gkeys

#endif  // GKEYS_STORAGE_DELTA_LOG_H_
