#ifndef GKEYS_STORAGE_DURABLE_DIR_H_
#define GKEYS_STORAGE_DURABLE_DIR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/em_common.h"
#include "core/match_plan.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "keys/key.h"
#include "storage/delta_log.h"

namespace gkeys {
namespace storage {

/// A generation-numbered durable directory: the crash-safe home of one
/// long-running matching session. Each generation pairs an immutable
/// snapshot with the write-ahead log of delta batches ingested since:
///
///     <dir>/snap.000007.gks    base snapshot of generation 7
///     <dir>/wal.000007.log     acknowledged batches since that save
///
/// SaveSnapshot installs generation g+1 atomically (MmapStore's
/// write-temp → fsync → rename → dir-fsync) and starts a fresh log tied
/// to it, then prunes generations beyond keep-last-N; AppendDelta makes
/// one batch durable in O(batch) — the cheap ingest path between the
/// expensive saves. A failure at ANY step (ENOSPC, crash, torn write)
/// leaves the previous generation fully intact: recovery
/// (storage/recovery.h) picks the newest valid snapshot and replays its
/// log's surviving records.
class DurableDir {
 public:
  static constexpr int kDefaultKeepSnapshots = 2;

  /// First byte of every WAL payload: how the batch was framed.
  static constexpr char kBinaryDeltaTag = 'B';  // EncodeDelta bytes
  static constexpr char kTextDeltaTag = 'T';    // delta-file text (CLI)

  /// Opens (creating if missing) a durable directory. An existing
  /// directory's current generation is read from its snapshot filenames;
  /// the current generation's log is opened for append, truncating any
  /// torn tail left by a crash.
  static StatusOr<DurableDir> Open(std::string dir);

  DurableDir(DurableDir&&) = default;
  DurableDir& operator=(DurableDir&&) = default;

  /// Installs generation g+1: snapshot first (atomic rename install),
  /// then a fresh empty log tied to it, then prunes snapshots and logs
  /// older than `keep_last` generations. On error the previous
  /// generation's files are untouched and recovery still lands on an
  /// acknowledged state — but this handle stops acknowledging appends
  /// (FailedPrecondition) until a SaveSnapshot succeeds: the new
  /// snapshot's install may have landed on disk even when an error is
  /// returned, and recovery would never replay the old log past it.
  Status SaveSnapshot(
      const Graph& g, const KeySet& keys, const MatchPlan& plan,
      const MatchResult& result, Algorithm algorithm,
      const std::unordered_map<std::string, NodeId>* entity_names = nullptr,
      int keep_last = kDefaultKeepSnapshots);

  /// Appends one acknowledged batch to the current generation's log
  /// (binary EncodeDelta framing). OK = durable. FailedPrecondition when
  /// no generation exists yet (SaveSnapshot first) or after a previous
  /// append failure (rotate via SaveSnapshot).
  Status AppendDelta(const GraphDelta& delta);

  /// Same, framing the batch as raw delta-file text (`+ s p o` lines).
  /// Recovery replays it through ParseDelta against the session's
  /// evolving entity-name table, so CLI-ingested batches may reference
  /// entities introduced by earlier batches by token.
  Status AppendDeltaText(std::string_view text);

  /// 0 while the directory has no snapshot yet.
  uint64_t generation() const { return generation_; }
  const std::string& dir() const { return dir_; }
  /// Records in the current generation's log (surviving + appended).
  size_t wal_records() const {
    return wal_ == nullptr ? 0 : wal_->records_appended();
  }

  std::string SnapshotPath(uint64_t generation) const;
  std::string WalPath(uint64_t generation) const;

  /// Generations that have a snapshot file in `dir`, sorted DESCENDING
  /// (newest first — recovery's probe order). IoError when the
  /// directory cannot be read.
  static StatusOr<std::vector<uint64_t>> ListGenerations(
      const std::string& dir);

 private:
  explicit DurableDir(std::string dir) : dir_(std::move(dir)) {}

  Status AppendPayload(char tag, std::string_view body);

  std::string dir_;
  uint64_t generation_ = 0;
  std::unique_ptr<DeltaLog> wal_;
};

}  // namespace storage
}  // namespace gkeys

#endif  // GKEYS_STORAGE_DURABLE_DIR_H_
