#include "storage/recovery.h"

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include <unistd.h>

#include "io/triples.h"
#include "storage/delta_log.h"
#include "storage/durable_dir.h"
#include "storage/mmap_store.h"

namespace gkeys {
namespace storage {

namespace {

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

Status LossAt(size_t batch_index, const Status& cause) {
  return Status::DataLoss("acknowledged batch " + std::to_string(batch_index) +
                          " is unrecoverable: " + std::string(cause.message()));
}

std::string GenPath(const std::string& dir, const char* prefix, uint64_t g,
                    const char* suffix) {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%06llu%s", prefix,
                static_cast<unsigned long long>(g), suffix);
  return dir + "/" + name;
}

}  // namespace

StatusOr<RecoveredSession> Recover(const std::string& dir,
                                   const Matcher& matcher) {
  auto gens = DurableDir::ListGenerations(dir);
  if (!gens.ok() || gens->empty())
    return Status::NotFound("no snapshot in " + dir);

  // PICK: newest generation whose snapshot opens and loads cleanly. A
  // snapshot only becomes visible through MmapStore's atomic rename, so
  // a skip here means post-install corruption, not a crash artifact.
  // Recovery reads paths directly rather than DurableDir::Open — it must
  // stay read-only until the caller decides what to do with the state.
  std::unique_ptr<Snapshot> base;
  uint64_t generation = 0;
  size_t skipped = 0;
  for (uint64_t g : *gens) {
    auto store = MmapStore::Open(GenPath(dir, "snap.", g, ".gks"));
    if (!store.ok()) {
      ++skipped;
      continue;
    }
    auto snap = Snapshot::Load(**store);
    if (!snap.ok()) {
      ++skipped;
      continue;
    }
    base = std::make_unique<Snapshot>(std::move(*snap));
    generation = g;
    break;
  }
  if (base == nullptr)
    return Status::DataLoss("every snapshot in " + dir + " is corrupt (" +
                            std::to_string(skipped) + " tried)");

  RecoveredSession session{std::move(*base), {}, {}};
  session.entity_names = session.snapshot.entity_names();
  session.report.generation = generation;
  session.report.snapshots_skipped = skipped;
  session.report.pairs = session.snapshot.result().pairs.size();

  // REPLAY: the base generation's write-ahead log. Missing log = a save
  // that crashed between snapshot install and log creation, or a pre-WAL
  // snapshot directory — either way zero acknowledged batches, a clean
  // no-op.
  const std::string wal_path = GenPath(dir, "wal.", generation, ".log");
  if (!FileExists(wal_path)) return session;

  auto replay = DeltaLog::Replay(wal_path);
  if (!replay.ok()) {
    if (replay.status().code() == StatusCode::kDataLoss)
      return replay.status();
    // A log whose fsync'd header no longer parses is corruption of
    // acknowledged bytes, not a torn tail.
    return Status::DataLoss("log " + wal_path + ": " +
                            std::string(replay.status().message()));
  }
  session.report.batches_truncated = replay->truncated;
  if (!replay->has_header) return session;  // header never hit disk: no-op
  if (replay->generation != generation)
    return Status::DataLoss(
        "log " + wal_path + " belongs to generation " +
        std::to_string(replay->generation) + ", snapshot is generation " +
        std::to_string(generation));

  // APPLY: every surviving record passed its checksum, so it was
  // acknowledged — any failure from here on is real data loss. Each
  // batch runs the normal incremental lifecycle (Apply → Patch →
  // Rematch via Snapshot::Resume), so the recovered result is
  // byte-identical to an uninterrupted process's. Replay follows the
  // SNAPSHOT's algorithm when the caller's differs — the stored plan was
  // compiled for it (e.g. the EMVC family needs its product graph), and
  // all six produce identical pairs anyway.
  Matcher replayer = matcher;
  if (replayer.algorithm() != session.snapshot.algorithm()) {
    int procs = replayer.options().processors;
    replayer.algorithm(session.snapshot.algorithm()).processors(procs);
  }
  for (size_t i = 0; i < replay->records.size(); ++i) {
    const std::string& rec = replay->records[i];
    if (rec.empty()) return LossAt(i, Status::ParseError("empty payload"));
    std::string_view body(rec.data() + 1, rec.size() - 1);
    std::unordered_map<std::string, NodeId> new_bindings;
    auto delta = [&]() -> StatusOr<GraphDelta> {
      switch (rec[0]) {
        case DurableDir::kBinaryDeltaTag:
          return DecodeDelta(body, session.snapshot.graph());
        case DurableDir::kTextDeltaTag:
          return ParseDelta(body, session.snapshot.graph(),
                            session.entity_names, &new_bindings);
        default:
          return Status::ParseError(std::string("unknown batch tag '") +
                                    rec[0] + "'");
      }
    }();
    if (!delta.ok()) return LossAt(i, delta.status());
    auto result = session.snapshot.Resume(replayer, *delta);
    if (!result.ok()) return LossAt(i, result.status());
    // The staged ids new_bindings carries are exactly what Apply just
    // materialized, so they are valid session NodeIds from here on.
    for (auto& [token, id] : new_bindings) session.entity_names[token] = id;
    ++session.report.batches_replayed;
  }
  session.report.pairs = session.snapshot.result().pairs.size();
  return session;
}

}  // namespace storage

// Defined here, not in core/, so the core library stays layered below
// the storage subsystem (mirrors Matcher::Resume in snapshot.cc).
StatusOr<storage::RecoveredSession> Matcher::Recover(
    const std::string& dir) const {
  return storage::Recover(dir, *this);
}

}  // namespace gkeys
