#include "storage/fault_store.h"

#include <utility>

namespace gkeys {
namespace storage {

Status FaultInjectingStore::Put(std::string key, std::string value) {
  if (puts_++ == script_.fail_put_at) return script_.error;
  return base_.Put(std::move(key), std::move(value));
}

Status FaultInjectingStore::Flush() {
  if (flushes_++ == script_.fail_flush_at) return script_.error;
  return base_.Flush();
}

std::string_view FaultInjectingStore::Tamper(std::string_view key,
                                             std::string_view value) const {
  if (script_.corrupt_key.empty() || key != script_.corrupt_key) return value;
  scratch_.assign(value);
  if (script_.corrupt_at < scratch_.size()) {
    scratch_[script_.corrupt_at] = static_cast<char>(
        scratch_[script_.corrupt_at] ^ script_.corrupt_mask);
  }
  if (script_.truncate_to < scratch_.size())
    scratch_.resize(script_.truncate_to);
  return scratch_;
}

StatusOr<std::string_view> FaultInjectingStore::Get(
    std::string_view key) const {
  if (gets_++ == script_.fail_get_at) return script_.error;
  auto value = base_.Get(key);
  if (!value.ok()) return value;
  return Tamper(key, *value);
}

Status FaultInjectingStore::Scan(std::string_view prefix,
                                 const ScanFn& fn) const {
  if (scans_++ == script_.fail_scan_at) return script_.error;
  return base_.Scan(prefix, [this, &fn](std::string_view key,
                                        std::string_view value) {
    return fn(key, Tamper(key, value));
  });
}

}  // namespace storage
}  // namespace gkeys
