#ifndef GKEYS_STORAGE_PLAN_CODEC_H_
#define GKEYS_STORAGE_PLAN_CODEC_H_

#include <cstdint>

#include "common/status.h"
#include "core/em_common.h"
#include "core/match_plan.h"
#include "graph/graph.h"
#include "keys/key.h"
#include "storage/store.h"

namespace gkeys {
namespace storage {

/// Everything the fixed-size meta record carries: enough to validate the
/// other records' counts and to reconstruct the options the plan was
/// compiled with. Written last (the codecs fill the counts as they
/// encode), read first.
struct SnapshotMeta {
  Algorithm algorithm = Algorithm::kEmOptVc;
  EmOptions em_options;
  PlanOptions plan_options;
  bool has_product_graph = false;
  bool has_entity_names = false;
  uint64_t num_symbols = 0;
  uint64_t num_nodes = 0;
  uint64_t num_candidates = 0;
  uint64_t num_pool_sets = 0;   // content-deduplicated NodeSets ('D')
  uint64_t num_relations = 0;   // content-deduplicated Relations ('R')
  uint64_t num_sig_types = 0;   // signature indexes ('X')
  uint64_t num_derivations = 0;
  uint64_t num_pairs = 0;
  // EmContext enumeration counters (not derivable from the survivors).
  uint64_t candidates_initial = 0;
  uint64_t candidates_blocked = 0;
  uint64_t neighbor_nodes = 0;
  uint64_t neighbor_nodes_reduced = 0;
};

/// (De)serializes the three snapshot artifacts — graph, plan, result —
/// into big-endian length-prefixed records behind the Store interface.
/// Friended into EmContext / MatchPlan / ProductGraph: the codec restores
/// the private compiled state directly, then replays the cheap
/// deterministic derivations (CompileKeys, the dependency-index
/// inversion, the product-graph edge pass) instead of persisting them.
///
/// Key layout (prefix byte + big-endian fixed-width suffix, so scan
/// order == id order):
///
///     'M'            meta record (SnapshotMeta)
///     'S' be32(sym)  interned string, in symbol order
///     'N' be64(id)   node: u8 kind, be32 label symbol
///     'E' be64(src)  out-edge run: varint count, per edge varint pred +
///                    varint dst (absent record == no out-edges)
///     'K'            key set as DSL text (ToDsl round-trip)
///     'T'            entity-name table (gkeys CLI deltas resolve
///                    through it; optional)
///     'P'            plan blob: d-neighbor slots, candidates, raw
///                    dependency scans
///     'D' be64(id)   NodeSet pool, content-deduplicated: COW-shared
///                    d-neighbor / pairing-reduced sets store once
///     'X' be32(type) per-type signature index, overlays folded into an
///                    effective base map
///     'G'            product graph: per-candidate relation pool ids
///     'R' be64(id)   pairing-relation pool, content-deduplicated
///     'A'            result pairs
///     'V' be64(i)    derivation i of the provenance index, in index
///                    order (the order retraction replays)
class PlanCodec {
 public:
  // ---- Meta ----------------------------------------------------------
  static Status EncodeMeta(const SnapshotMeta& meta, Store& store);
  static StatusOr<SnapshotMeta> DecodeMeta(const Store& store);

  // ---- Graph + interner ----------------------------------------------
  static Status EncodeGraph(const Graph& g, Store& store, SnapshotMeta* meta);
  /// Rebuilds the graph by replaying construction in id order; the
  /// result is byte-identical (CSR, interner, type tables) to the saved
  /// one. All record contents are bounds-validated: corrupt payloads
  /// return ParseError, never crash.
  static StatusOr<Graph> DecodeGraph(const Store& store,
                                     const SnapshotMeta& meta);

  // ---- Plan ----------------------------------------------------------
  /// Serializes the compiled plan. COW-shared sections (NodeSets, pairing
  /// relations) are deduplicated by pointer identity first and content
  /// second, so a plan lineage of N patches stores shared payloads once.
  static Status EncodePlan(const MatchPlan& plan, Store& store,
                           SnapshotMeta* meta);
  /// Rebuilds a runnable MatchPlan against `g`/`keys` (which must be the
  /// decoded counterparts and must outlive the plan). The expensive build
  /// phases are skipped: keys recompile, slots/candidates/signature
  /// indexes restore from records, the dependency index re-inverts from
  /// the raw scans, and the product graph replays its edge pass from the
  /// restored relations.
  static StatusOr<MatchPlan> DecodePlan(const Store& store,
                                        const SnapshotMeta& meta,
                                        const Graph& g, const KeySet& keys);

  // ---- Result + provenance index -------------------------------------
  static Status EncodeResult(const MatchResult& result, Store& store,
                             SnapshotMeta* meta);
  /// Stats are not persisted: the decoded result carries zeroed stats
  /// apart from confirmed (= pairs.size()); timings belong to the run
  /// that produced them, not to the snapshot.
  static StatusOr<MatchResult> DecodeResult(const Store& store,
                                            const SnapshotMeta& meta);
};

}  // namespace storage
}  // namespace gkeys

#endif  // GKEYS_STORAGE_PLAN_CODEC_H_
