#include "storage/plan_codec.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/endian.h"
#include "core/product_graph.h"
#include "graph/neighborhood.h"

namespace gkeys {
namespace storage {

namespace {

std::string Key1(char prefix) { return std::string(1, prefix); }

std::string KeyBe32(char prefix, uint32_t id) {
  std::string k(1, prefix);
  PutBe32(k, id);
  return k;
}

std::string KeyBe64(char prefix, uint64_t id) {
  std::string k(1, prefix);
  PutBe64(k, id);
  return k;
}

Status Corrupt(const std::string& what) {
  return Status::ParseError("corrupt snapshot: " + what);
}

/// Sorted ascending uint64 list, delta-encoded.
void PutDeltaList64(std::string& out, const std::vector<uint64_t>& vals) {
  PutVarint(out, vals.size());
  uint64_t prev = 0;
  for (uint64_t v : vals) {
    PutVarint(out, v - prev);
    prev = v;
  }
}

bool ReadDeltaList64(ByteReader& r, uint64_t max_count,
                     std::vector<uint64_t>* out) {
  uint64_t count = 0;
  if (!r.ReadVarint(&count) || count > max_count) return false;
  out->clear();
  out->reserve(count);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t d = 0;
    if (!r.ReadVarint(&d)) return false;
    prev += d;
    out->push_back(prev);
  }
  return true;
}

/// Sorted ascending NodeId list, delta-encoded.
void PutDeltaList32(std::string& out, const std::vector<NodeId>& vals) {
  PutVarint(out, vals.size());
  NodeId prev = 0;
  for (NodeId v : vals) {
    PutVarint(out, v - prev);
    prev = v;
  }
}

bool ReadDeltaList32(ByteReader& r, uint64_t max_value,
                     std::vector<NodeId>* out) {
  uint64_t count = 0;
  if (!r.ReadVarint(&count) || count > max_value + 1) return false;
  out->clear();
  out->reserve(count);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t d = 0;
    if (!r.ReadVarint(&d)) return false;
    prev += d;
    if (prev > max_value) return false;
    out->push_back(static_cast<NodeId>(prev));
  }
  return true;
}

/// Content-deduplicating pool of COW-shared payloads: pointer identity
/// short-circuits payloads literally shared across plan generations;
/// equal content stored under distinct pointers still collapses to one
/// record.
template <typename T, typename ContentKey>
class DedupPool {
 public:
  uint64_t Id(const std::shared_ptr<const T>& item, ContentKey content) {
    auto by_ptr = by_ptr_.find(item.get());
    if (by_ptr != by_ptr_.end()) return by_ptr->second;
    auto [it, inserted] =
        by_content_.emplace(std::move(content), items_.size());
    if (inserted) items_.push_back(item.get());
    by_ptr_.emplace(item.get(), it->second);
    return it->second;
  }

  const std::vector<const T*>& items() const { return items_; }

 private:
  std::unordered_map<const T*, uint64_t> by_ptr_;
  std::map<ContentKey, uint64_t> by_content_;
  std::vector<const T*> items_;
};

using NodeSetPool = DedupPool<NodeSet, std::vector<NodeId>>;
using RelationPool =
    DedupPool<std::vector<uint64_t>, std::vector<uint64_t>>;

}  // namespace

// ---- Meta ------------------------------------------------------------

Status PlanCodec::EncodeMeta(const SnapshotMeta& meta, Store& store) {
  std::string v;
  v.push_back(static_cast<char>(meta.algorithm));
  const EmOptions& em = meta.em_options;
  PutVarint(v, static_cast<uint64_t>(em.processors));
  uint8_t em_flags = (em.use_vf2 << 0) | (em.use_pairing << 1) |
                     (em.use_dependency << 2) | (em.use_incremental << 3) |
                     (em.use_blocking << 4) | (em.prioritized << 5) |
                     (em.record_provenance << 6);
  v.push_back(static_cast<char>(em_flags));
  PutVarint(v, static_cast<uint64_t>(em.bounded_messages));
  const PlanOptions& po = meta.plan_options;
  PutVarint(v, static_cast<uint64_t>(po.processors));
  uint8_t po_flags = (po.use_pairing << 0) | (po.use_blocking << 1) |
                     (po.build_product_graph << 2);
  v.push_back(static_cast<char>(po_flags));
  v.push_back(static_cast<char>(meta.has_product_graph));
  v.push_back(static_cast<char>(meta.has_entity_names));
  for (uint64_t n :
       {meta.num_symbols, meta.num_nodes, meta.num_candidates,
        meta.num_pool_sets, meta.num_relations, meta.num_sig_types,
        meta.num_derivations, meta.num_pairs, meta.candidates_initial,
        meta.candidates_blocked, meta.neighbor_nodes,
        meta.neighbor_nodes_reduced}) {
    PutVarint(v, n);
  }
  return store.Put(Key1('M'), std::move(v));
}

StatusOr<SnapshotMeta> PlanCodec::DecodeMeta(const Store& store) {
  auto blob = store.Get(Key1('M'));
  if (!blob.ok()) return Corrupt("missing meta record");
  ByteReader r(*blob);
  SnapshotMeta meta;
  uint8_t algo = 0, em_flags = 0, po_flags = 0, has_pg = 0, has_names = 0;
  uint64_t em_procs = 0, em_bounded = 0, po_procs = 0;
  if (!r.ReadU8(&algo) || !r.ReadVarint(&em_procs) || !r.ReadU8(&em_flags) ||
      !r.ReadVarint(&em_bounded) || !r.ReadVarint(&po_procs) ||
      !r.ReadU8(&po_flags) || !r.ReadU8(&has_pg) || !r.ReadU8(&has_names)) {
    return Corrupt("truncated meta record");
  }
  if (algo > static_cast<uint8_t>(Algorithm::kEmOptVc))
    return Corrupt("unknown algorithm id " + std::to_string(algo));
  meta.algorithm = static_cast<Algorithm>(algo);
  meta.em_options.processors = static_cast<int>(em_procs);
  meta.em_options.use_vf2 = em_flags & 1;
  meta.em_options.use_pairing = em_flags & 2;
  meta.em_options.use_dependency = em_flags & 4;
  meta.em_options.use_incremental = em_flags & 8;
  meta.em_options.use_blocking = em_flags & 16;
  meta.em_options.prioritized = em_flags & 32;
  meta.em_options.record_provenance = em_flags & 64;
  meta.em_options.bounded_messages = static_cast<int>(em_bounded);
  meta.plan_options.processors = static_cast<int>(po_procs);
  meta.plan_options.use_pairing = po_flags & 1;
  meta.plan_options.use_blocking = po_flags & 2;
  meta.plan_options.build_product_graph = po_flags & 4;
  meta.has_product_graph = has_pg != 0;
  meta.has_entity_names = has_names != 0;
  for (uint64_t* n :
       {&meta.num_symbols, &meta.num_nodes, &meta.num_candidates,
        &meta.num_pool_sets, &meta.num_relations, &meta.num_sig_types,
        &meta.num_derivations, &meta.num_pairs, &meta.candidates_initial,
        &meta.candidates_blocked, &meta.neighbor_nodes,
        &meta.neighbor_nodes_reduced}) {
    if (!r.ReadVarint(n)) return Corrupt("truncated meta counts");
  }
  if (!r.AtEnd()) return Corrupt("trailing bytes in meta record");
  if (meta.num_nodes > UINT32_MAX || meta.num_symbols > UINT32_MAX)
    return Corrupt("node/symbol count out of range");
  return meta;
}

// ---- Graph + interner ------------------------------------------------

Status PlanCodec::EncodeGraph(const Graph& g, Store& store,
                              SnapshotMeta* meta) {
  const StringInterner& interner = g.interner();
  for (Symbol s = 0; s < interner.size(); ++s) {
    GKEYS_RETURN_IF_ERROR(store.Put(KeyBe32('S', s), interner.Resolve(s)));
  }
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    std::string v;
    v.push_back(g.IsEntity(n) ? 0 : 1);
    PutBe32(v, g.IsEntity(n) ? g.entity_type(n) : g.value_sym(n));
    GKEYS_RETURN_IF_ERROR(store.Put(KeyBe64('N', n), std::move(v)));
    auto out = g.Out(n);
    if (out.empty()) continue;
    std::string e;
    PutVarint(e, out.size());
    for (const Edge& edge : out) {
      PutVarint(e, edge.pred);
      PutVarint(e, edge.dst);
    }
    GKEYS_RETURN_IF_ERROR(store.Put(KeyBe64('E', n), std::move(e)));
  }
  meta->num_symbols = interner.size();
  meta->num_nodes = g.NumNodes();
  return Status::OK();
}

StatusOr<Graph> PlanCodec::DecodeGraph(const Store& store,
                                       const SnapshotMeta& meta) {
  Graph g;
  // Interner replay in symbol order reproduces every id (including
  // symbols no node references, e.g. predicates seen only in key DSL).
  for (Symbol s = 0; s < meta.num_symbols; ++s) {
    auto v = store.Get(KeyBe32('S', s));
    if (!v.ok()) return Corrupt("missing string record " + std::to_string(s));
    if (g.Intern(*v) != s)
      return Corrupt("duplicate interned string at symbol " +
                     std::to_string(s));
  }
  // Nodes in id order: AddEntity/AddValue assign ids sequentially, so the
  // replay reproduces kinds, labels, per-type tables, and the value map.
  for (NodeId n = 0; n < meta.num_nodes; ++n) {
    auto v = store.Get(KeyBe64('N', n));
    if (!v.ok()) return Corrupt("missing node record " + std::to_string(n));
    ByteReader r(*v);
    uint8_t kind = 0;
    uint32_t label = 0;
    if (!r.ReadU8(&kind) || !r.ReadBe32(&label) || !r.AtEnd() || kind > 1 ||
        label >= meta.num_symbols) {
      return Corrupt("bad node record " + std::to_string(n));
    }
    NodeId got = kind == 0 ? g.AddEntity(label)
                           : g.AddValue(g.interner().Resolve(label));
    if (got != n)
      return Corrupt("node record " + std::to_string(n) +
                     " does not replay to its id (duplicate value?)");
  }
  // Out-edge runs carry every triple once (in-edges are the transpose).
  Status scan = store.Scan("E", [&](std::string_view key,
                                    std::string_view value) -> Status {
    if (key.size() != 9) return Corrupt("bad edge-record key length");
    uint64_t src = GetBe64(key.data() + 1);
    if (src >= meta.num_nodes) return Corrupt("edge record for unknown node");
    ByteReader r(value);
    uint64_t count = 0;
    if (!r.ReadVarint(&count) || count > value.size())
      return Corrupt("bad edge count");
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t pred = 0, dst = 0;
      if (!r.ReadVarint32(&pred) || !r.ReadVarint32(&dst) ||
          pred >= meta.num_symbols || dst >= meta.num_nodes) {
        return Corrupt("bad edge in node " + std::to_string(src));
      }
      Status st = g.AddTriple(static_cast<NodeId>(src), Symbol{pred},
                              static_cast<NodeId>(dst));
      if (!st.ok()) return Corrupt("unreplayable edge: " + st.message());
    }
    if (!r.AtEnd()) return Corrupt("trailing bytes in edge record");
    return Status::OK();
  });
  GKEYS_RETURN_IF_ERROR(scan);
  g.Finalize();
  return g;
}

// ---- Plan ------------------------------------------------------------

Status PlanCodec::EncodePlan(const MatchPlan& plan, Store& store,
                             SnapshotMeta* meta) {
  const MatchPlan::Rep& rep = *plan.rep_;
  const EmContext& ctx = rep.ctx;
  meta->plan_options = rep.options;
  meta->em_options = ctx.opts_;
  meta->has_product_graph = rep.pg.has_value();
  meta->num_candidates = ctx.candidates_.size();
  meta->candidates_initial = ctx.candidates_initial_;
  meta->candidates_blocked = ctx.candidates_blocked_;
  meta->neighbor_nodes = ctx.neighbor_nodes_;
  meta->neighbor_nodes_reduced = ctx.neighbor_nodes_reduced_;

  // NodeSet pool: d-neighbor sets and pairing-reduced sets,
  // content-deduplicated — a lineage of patched plans shares most
  // payloads, and they are stored exactly once.
  NodeSetPool pool;
  std::vector<uint64_t> slot_pool_ids(ctx.dneighbor_sets_.size());
  for (size_t i = 0; i < ctx.dneighbor_sets_.size(); ++i) {
    slot_pool_ids[i] =
        pool.Id(ctx.dneighbor_sets_[i], ctx.dneighbor_sets_[i]->sorted());
  }
  std::vector<uint64_t> reduced_pool_ids(ctx.reduced_pool_.size());
  for (size_t i = 0; i < ctx.reduced_pool_.size(); ++i) {
    reduced_pool_ids[i] =
        pool.Id(ctx.reduced_pool_[i], ctx.reduced_pool_[i]->sorted());
  }

  // Slot → entity inversion (dneighbor_slot_ is the dense transpose).
  std::vector<NodeId> slot_entity(ctx.dneighbor_sets_.size(), kNoNode);
  for (NodeId n = 0; n < ctx.dneighbor_slot_.size(); ++n) {
    uint32_t slot = ctx.dneighbor_slot_[n];
    if (slot != UINT32_MAX) slot_entity[slot] = n;
  }

  const bool pairing = ctx.opts_.use_pairing;
  std::string p;
  PutVarint(p, slot_entity.size());
  for (size_t i = 0; i < slot_entity.size(); ++i) {
    PutVarint(p, slot_entity[i]);
    PutVarint(p, slot_pool_ids[i]);
  }
  PutVarint(p, ctx.candidates_.size());
  for (size_t i = 0; i < ctx.candidates_.size(); ++i) {
    const Candidate& c = ctx.candidates_[i];
    PutVarint(p, c.e1);
    PutVarint(p, c.e2);
    uint8_t flags = (c.has_recursive_key << 0) | (c.has_value_based_key << 1);
    p.push_back(static_cast<char>(flags));
    if (pairing) {
      // Assembly invariant: candidate i's sides are reduced_pool_[2i]
      // and [2i+1] (the patch constructor preserves it).
      PutVarint(p, reduced_pool_ids[2 * i]);
      PutVarint(p, reduced_pool_ids[2 * i + 1]);
    }
  }
  // Raw dependency scans; the derived dependents_/ghosts_ re-invert on
  // load (InvertDependencyIndex is deterministic given these).
  for (const std::vector<uint64_t>& deps : ctx.depends_on_pairs_) {
    PutDeltaList64(p, deps);
  }
  GKEYS_RETURN_IF_ERROR(store.Put(Key1('P'), std::move(p)));

  // Signature indexes, overlays folded into an effective base — read
  // behavior is identical (ValuesOf/ForEachMember see the same data),
  // and the loaded plan starts overlay-free like a compacted one.
  meta->num_sig_types = ctx.sig_index_.size();
  for (const auto& [type, idx] : ctx.sig_index_) {
    std::string x;
    x.push_back(idx != nullptr && idx->blockable ? 1 : 0);
    uint64_t nkeys = idx == nullptr ? 0 : idx->keys.size();
    PutVarint(x, nkeys);
    if (idx != nullptr) {
      for (const EmContext::SigPerKey& pk : idx->keys) {
        PutVarint(x, static_cast<uint64_t>(pk.key));
        x.push_back(pk.source.constant != kNoNode ? 1 : 0);
        if (pk.source.constant != kNoNode) PutVarint(x, pk.source.constant);
        PutVarint(x, pk.source.path.size());
        for (const EmContext::SigStep& step : pk.source.path) {
          PutVarint(x, step.pred);
          x.push_back(step.forward ? 1 : 0);
          PutVarint(x, static_cast<uint64_t>(step.to_node));
        }
        std::map<NodeId, const std::vector<NodeId>*> effective;
        for (const auto& [e, vals] : *pk.entity_values) {
          if (pk.patched_values.find(e) == pk.patched_values.end() &&
              !vals.empty()) {
            effective[e] = &vals;
          }
        }
        for (const auto& [e, vals] : pk.patched_values) {
          if (!vals.empty()) effective[e] = &vals;
        }
        PutVarint(x, effective.size());
        for (const auto& [e, vals] : effective) {
          PutVarint(x, e);
          PutDeltaList32(x, *vals);
        }
      }
    }
    GKEYS_RETURN_IF_ERROR(store.Put(KeyBe32('X', type), std::move(x)));
  }

  // Product graph: only the per-candidate pairing relations persist —
  // Vp, the edge set, and the counts all replay from them (exactly how
  // BuildProductGraph derives them).
  RelationPool relations;
  if (rep.pg.has_value()) {
    const ProductGraph& pg = *rep.pg;
    std::string gp;
    PutVarint(gp, pg.candidate_pairs_.size());
    for (const auto& rel : pg.candidate_pairs_) {
      PutVarint(gp, relations.Id(rel, *rel));
    }
    GKEYS_RETURN_IF_ERROR(store.Put(Key1('G'), std::move(gp)));
    for (size_t i = 0; i < relations.items().size(); ++i) {
      // Element order is load-bearing: it fixes product-node ids, which
      // fix the edge-pass output — preserving byte-identical adjacency
      // for a from-scratch-built plan.
      std::string rv;
      const std::vector<uint64_t>& rel = *relations.items()[i];
      PutVarint(rv, rel.size());
      for (uint64_t packed : rel) PutVarint(rv, packed);
      GKEYS_RETURN_IF_ERROR(store.Put(KeyBe64('R', i), std::move(rv)));
    }
  }
  meta->num_relations = relations.items().size();

  // Pool payloads last (ids are now final).
  for (size_t i = 0; i < pool.items().size(); ++i) {
    std::string d;
    PutDeltaList32(d, pool.items()[i]->sorted());
    GKEYS_RETURN_IF_ERROR(store.Put(KeyBe64('D', i), std::move(d)));
  }
  meta->num_pool_sets = pool.items().size();
  return Status::OK();
}

StatusOr<MatchPlan> PlanCodec::DecodePlan(const Store& store,
                                          const SnapshotMeta& meta,
                                          const Graph& g,
                                          const KeySet& keys) {
  if (g.NumNodes() != meta.num_nodes)
    return Corrupt("graph/meta node-count mismatch");
  std::shared_ptr<MatchPlan::Rep> rep(
      new MatchPlan::Rep(EmContext::DeserializeShell{}, g, keys,
                         meta.plan_options, meta.em_options));
  EmContext& ctx = rep->ctx;

  // NodeSet pool. Scan order is id order (be64 keys), so sequential
  // appends reconstruct the pool without trusting meta's count for a
  // pre-allocation.
  std::vector<std::shared_ptr<const NodeSet>> pool;
  Status scan = store.Scan("D", [&](std::string_view key,
                                    std::string_view value) -> Status {
    if (key.size() != 9 || GetBe64(key.data() + 1) != pool.size())
      return Corrupt("non-sequential NodeSet pool record");
    ByteReader r(value);
    std::vector<NodeId> nodes;
    if (!ReadDeltaList32(r, meta.num_nodes - 1, &nodes) || !r.AtEnd())
      return Corrupt("bad NodeSet pool record " +
                     std::to_string(pool.size()));
    pool.push_back(std::make_shared<const NodeSet>(
        NodeSet::FromSorted(std::move(nodes))));
    return Status::OK();
  });
  GKEYS_RETURN_IF_ERROR(scan);
  if (pool.size() != meta.num_pool_sets)
    return Corrupt("NodeSet pool count mismatch");

  // Plan blob: slots, candidates, dependency scans.
  auto p_blob = store.Get(Key1('P'));
  if (!p_blob.ok()) return Corrupt("missing plan record");
  ByteReader p(*p_blob);
  uint64_t num_slots = 0;
  if (!p.ReadVarint(&num_slots) || num_slots > meta.num_nodes)
    return Corrupt("bad slot count");
  ctx.dneighbor_slot_.assign(g.NumNodes(), EmContext::kNoSlot);
  ctx.dneighbor_sets_.resize(num_slots);
  for (uint64_t i = 0; i < num_slots; ++i) {
    uint32_t entity = 0;
    uint64_t pool_id = 0;
    if (!p.ReadVarint32(&entity) || !p.ReadVarint(&pool_id) ||
        entity >= g.NumNodes() || pool_id >= pool.size() ||
        ctx.dneighbor_slot_[entity] != EmContext::kNoSlot) {
      return Corrupt("bad d-neighbor slot " + std::to_string(i));
    }
    ctx.dneighbor_slot_[entity] = static_cast<uint32_t>(i);
    ctx.dneighbor_sets_[i] = pool[pool_id];
  }
  uint64_t num_candidates = 0;
  if (!p.ReadVarint(&num_candidates) ||
      num_candidates != meta.num_candidates) {
    return Corrupt("candidate count mismatch");
  }
  const bool pairing = meta.em_options.use_pairing;
  ctx.candidates_.reserve(num_candidates);
  if (pairing) ctx.reduced_pool_.reserve(2 * num_candidates);
  for (uint64_t i = 0; i < num_candidates; ++i) {
    uint32_t e1 = 0, e2 = 0;
    uint8_t flags = 0;
    if (!p.ReadVarint32(&e1) || !p.ReadVarint32(&e2) || !p.ReadU8(&flags) ||
        e1 >= g.NumNodes() || e2 >= g.NumNodes() || !g.IsEntity(e1)) {
      return Corrupt("bad candidate " + std::to_string(i));
    }
    Candidate c;
    c.e1 = e1;
    c.e2 = e2;
    c.has_recursive_key = flags & 1;
    c.has_value_based_key = flags & 2;
    auto keys_it = ctx.keys_by_type_.find(g.entity_type(e1));
    if (keys_it == ctx.keys_by_type_.end())
      return Corrupt("candidate of unkeyed type");
    c.keys = &keys_it->second;
    if (pairing) {
      uint64_t p1 = 0, p2 = 0;
      if (!p.ReadVarint(&p1) || !p.ReadVarint(&p2) || p1 >= pool.size() ||
          p2 >= pool.size()) {
        return Corrupt("bad candidate pool refs");
      }
      // Re-establish the reduced_pool_[2i]/[2i+1] assembly invariant;
      // deduplicated entries may share one payload, which is fine —
      // nothing relies on pointer distinctness.
      ctx.reduced_pool_.push_back(pool[p1]);
      c.nbr1 = ctx.reduced_pool_.back().get();
      ctx.reduced_pool_.push_back(pool[p2]);
      c.nbr2 = ctx.reduced_pool_.back().get();
    } else {
      if (ctx.dneighbor_slot_[e1] == EmContext::kNoSlot ||
          ctx.dneighbor_slot_[e2] == EmContext::kNoSlot) {
        return Corrupt("candidate entity without d-neighbor slot");
      }
      c.nbr1 = ctx.dneighbor_sets_[ctx.dneighbor_slot_[e1]].get();
      c.nbr2 = ctx.dneighbor_sets_[ctx.dneighbor_slot_[e2]].get();
    }
    ctx.candidates_.push_back(c);
  }
  ctx.depends_on_pairs_.resize(num_candidates);
  for (uint64_t i = 0; i < num_candidates; ++i) {
    if (!ReadDeltaList64(p, meta.num_nodes * meta.num_nodes + 1,
                         &ctx.depends_on_pairs_[i])) {
      return Corrupt("bad dependency scan " + std::to_string(i));
    }
  }
  if (!p.AtEnd()) return Corrupt("trailing bytes in plan record");
  ctx.candidates_initial_ = meta.candidates_initial;
  ctx.candidates_blocked_ = meta.candidates_blocked;
  ctx.neighbor_nodes_ = meta.neighbor_nodes;
  ctx.neighbor_nodes_reduced_ = meta.neighbor_nodes_reduced;
  ctx.InvertDependencyIndex();

  // Signature indexes.
  uint64_t sig_count = 0;
  scan = store.Scan("X", [&](std::string_view key,
                             std::string_view value) -> Status {
    if (key.size() != 5) return Corrupt("bad sig-record key length");
    uint32_t type = GetBe32(key.data() + 1);
    if (type >= meta.num_symbols) return Corrupt("sig record for bad type");
    ByteReader r(value);
    uint8_t blockable = 0;
    uint64_t nkeys = 0;
    if (!r.ReadU8(&blockable) || !r.ReadVarint(&nkeys) ||
        nkeys > ctx.compiled_.size()) {
      return Corrupt("bad sig index header");
    }
    auto idx = std::make_shared<EmContext::SigIndex>();
    idx->blockable = blockable != 0;
    idx->keys.reserve(nkeys);
    for (uint64_t k = 0; k < nkeys; ++k) {
      EmContext::SigPerKey pk;
      uint64_t key_idx = 0;
      uint8_t has_constant = 0;
      if (!r.ReadVarint(&key_idx) || key_idx >= ctx.compiled_.size() ||
          !r.ReadU8(&has_constant)) {
        return Corrupt("bad sig key header");
      }
      pk.key = static_cast<int>(key_idx);
      if (has_constant != 0) {
        uint32_t c = 0;
        if (!r.ReadVarint32(&c) || c >= meta.num_nodes)
          return Corrupt("bad sig constant");
        pk.source.constant = c;
      }
      uint64_t path_len = 0;
      if (!r.ReadVarint(&path_len) || path_len > value.size())
        return Corrupt("bad sig path length");
      pk.source.path.reserve(path_len);
      for (uint64_t s = 0; s < path_len; ++s) {
        uint32_t pred = 0;
        uint8_t forward = 0;
        uint64_t to_node = 0;
        if (!r.ReadVarint32(&pred) || pred >= meta.num_symbols ||
            !r.ReadU8(&forward) || !r.ReadVarint(&to_node) ||
            to_node > INT32_MAX) {
          return Corrupt("bad sig path step");
        }
        pk.source.path.push_back(EmContext::SigStep{
            Symbol{pred}, forward != 0, static_cast<int>(to_node)});
      }
      uint64_t nentities = 0;
      if (!r.ReadVarint(&nentities) || nentities > meta.num_nodes)
        return Corrupt("bad sig entity count");
      auto entity_values = std::make_shared<EmContext::SigMap>();
      auto buckets = std::make_shared<EmContext::SigMap>();
      entity_values->reserve(nentities);
      for (uint64_t e = 0; e < nentities; ++e) {
        uint32_t entity = 0;
        std::vector<NodeId> vals;
        if (!r.ReadVarint32(&entity) || entity >= meta.num_nodes ||
            !ReadDeltaList32(r, meta.num_nodes - 1, &vals) || vals.empty()) {
          return Corrupt("bad sig entity values");
        }
        // Entities arrive ascending, so bucket members stay ascending —
        // the order the blocked enumeration relies on.
        for (NodeId v : vals) (*buckets)[v].push_back(entity);
        (*entity_values)[entity] = std::move(vals);
      }
      pk.entity_values = std::move(entity_values);
      pk.buckets = std::move(buckets);
      idx->keys.push_back(std::move(pk));
    }
    if (!r.AtEnd()) return Corrupt("trailing bytes in sig record");
    ctx.sig_index_[type] = std::move(idx);
    ++sig_count;
    return Status::OK();
  });
  GKEYS_RETURN_IF_ERROR(scan);
  if (sig_count != meta.num_sig_types)
    return Corrupt("signature index count mismatch");

  // Product graph: restore the relation pool, then replay exactly what
  // BuildProductGraph derives from it (node interning in relation-scan
  // order, then the edge pass).
  if (meta.has_product_graph) {
    std::vector<std::shared_ptr<const ProductGraph::Relation>> rels;
    scan = store.Scan("R", [&](std::string_view key,
                               std::string_view value) -> Status {
      if (key.size() != 9 || GetBe64(key.data() + 1) != rels.size())
        return Corrupt("non-sequential relation record");
      ByteReader r(value);
      uint64_t count = 0;
      if (!r.ReadVarint(&count) || count > value.size())
        return Corrupt("bad relation count");
      auto rel = std::make_shared<ProductGraph::Relation>();
      rel->reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t packed = 0;
        if (!r.ReadVarint(&packed)) return Corrupt("bad relation entry");
        if ((packed >> 32) >= meta.num_nodes ||
            (packed & 0xffffffffu) >= meta.num_nodes) {
          return Corrupt("relation pair out of range");
        }
        rel->push_back(packed);
      }
      if (!r.AtEnd()) return Corrupt("trailing bytes in relation record");
      rels.push_back(std::move(rel));
      return Status::OK();
    });
    GKEYS_RETURN_IF_ERROR(scan);
    if (rels.size() != meta.num_relations)
      return Corrupt("relation pool count mismatch");
    auto g_blob = store.Get(Key1('G'));
    if (!g_blob.ok()) return Corrupt("missing product-graph record");
    ByteReader gr(*g_blob);
    uint64_t count = 0;
    if (!gr.ReadVarint(&count) || count != num_candidates)
      return Corrupt("product-graph candidate count mismatch");
    ProductGraph pg;
    pg.candidate_pairs_.resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t rel_id = 0;
      if (!gr.ReadVarint(&rel_id) || rel_id >= rels.size() ||
          rels[rel_id] == nullptr) {
        return Corrupt("bad relation reference");
      }
      pg.candidate_pairs_[i] = rels[rel_id];
      for (uint64_t packed : *pg.candidate_pairs_[i]) {
        ProductGraph::AddNodeRef(pg, packed);
      }
    }
    if (!gr.AtEnd()) return Corrupt("trailing bytes in product-graph record");
    ProductGraph::Finish(ctx, pg);
    rep->pg.emplace(std::move(pg));
  }

  return MatchPlan(std::shared_ptr<const MatchPlan::Rep>(std::move(rep)));
}

// ---- Result + provenance index ---------------------------------------

Status PlanCodec::EncodeResult(const MatchResult& result, Store& store,
                               SnapshotMeta* meta) {
  std::string a;
  PutVarint(a, result.pairs.size());
  for (const auto& [x, y] : result.pairs) {
    PutVarint(a, x);
    PutVarint(a, y);
  }
  GKEYS_RETURN_IF_ERROR(store.Put(Key1('A'), std::move(a)));
  for (size_t i = 0; i < result.derivations.size(); ++i) {
    const Derivation& d = result.derivations[i];
    std::string v;
    PutVarint(v, d.e1);
    PutVarint(v, d.e2);
    PutVarint(v, static_cast<uint64_t>(d.key + 1));  // -1 encodes as 0
    PutVarint(v, d.premises.size());
    for (const auto& [x, y] : d.premises) {
      PutVarint(v, x);
      PutVarint(v, y);
    }
    PutVarint(v, d.triples.size());
    for (const WitnessTriple& t : d.triples) {
      PutVarint(v, t.s);
      PutVarint(v, t.p);
      PutVarint(v, t.o);
    }
    GKEYS_RETURN_IF_ERROR(store.Put(KeyBe64('V', i), std::move(v)));
  }
  meta->num_pairs = result.pairs.size();
  meta->num_derivations = result.derivations.size();
  return Status::OK();
}

StatusOr<MatchResult> PlanCodec::DecodeResult(const Store& store,
                                              const SnapshotMeta& meta) {
  MatchResult result;
  auto a_blob = store.Get(Key1('A'));
  if (!a_blob.ok()) return Corrupt("missing result record");
  ByteReader a(*a_blob);
  uint64_t num_pairs = 0;
  if (!a.ReadVarint(&num_pairs) || num_pairs != meta.num_pairs ||
      num_pairs > a_blob->size()) {  // each pair takes >= 2 bytes
    return Corrupt("result pair count mismatch");
  }
  result.pairs.reserve(num_pairs);
  for (uint64_t i = 0; i < num_pairs; ++i) {
    uint32_t x = 0, y = 0;
    if (!a.ReadVarint32(&x) || !a.ReadVarint32(&y) || x >= meta.num_nodes ||
        y >= meta.num_nodes) {
      return Corrupt("bad result pair");
    }
    result.pairs.emplace_back(x, y);
  }
  if (!a.AtEnd()) return Corrupt("trailing bytes in result record");

  // Scan order is index order (be64 keys), so sequential appends keep
  // the replayable ordering without trusting meta's count up front.
  Status scan = store.Scan("V", [&](std::string_view key,
                                    std::string_view value) -> Status {
    if (key.size() != 9 ||
        GetBe64(key.data() + 1) != result.derivations.size()) {
      return Corrupt("non-sequential derivation record");
    }
    ByteReader r(value);
    Derivation d;
    uint32_t e1 = 0, e2 = 0;
    uint64_t key_plus_1 = 0, n = 0;
    if (!r.ReadVarint32(&e1) || !r.ReadVarint32(&e2) ||
        !r.ReadVarint(&key_plus_1) || e1 >= meta.num_nodes ||
        e2 >= meta.num_nodes || key_plus_1 > INT32_MAX) {
      return Corrupt("bad derivation header");
    }
    d.e1 = e1;
    d.e2 = e2;
    d.key = static_cast<int>(key_plus_1) - 1;
    if (!r.ReadVarint(&n) || n > value.size())
      return Corrupt("bad premise count");
    d.premises.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      uint32_t x = 0, y = 0;
      if (!r.ReadVarint32(&x) || !r.ReadVarint32(&y) ||
          x >= meta.num_nodes || y >= meta.num_nodes) {
        return Corrupt("bad premise");
      }
      d.premises.emplace_back(x, y);
    }
    if (!r.ReadVarint(&n) || n > value.size())
      return Corrupt("bad witness-triple count");
    d.triples.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      uint32_t s = 0, p = 0, o = 0;
      if (!r.ReadVarint32(&s) || !r.ReadVarint32(&p) || !r.ReadVarint32(&o) ||
          s >= meta.num_nodes || p >= meta.num_symbols ||
          o >= meta.num_nodes) {
        return Corrupt("bad witness triple");
      }
      d.triples.push_back(WitnessTriple{s, Symbol{p}, o});
    }
    if (!r.AtEnd()) return Corrupt("trailing bytes in derivation record");
    result.derivations.push_back(std::move(d));
    return Status::OK();
  });
  GKEYS_RETURN_IF_ERROR(scan);
  if (result.derivations.size() != meta.num_derivations)
    return Corrupt("derivation count mismatch");
  // Stats are not persisted; confirmed mirrors the stored pair set.
  result.stats.confirmed = result.pairs.size();
  return result;
}

}  // namespace storage
}  // namespace gkeys
