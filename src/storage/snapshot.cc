#include "storage/snapshot.h"

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/endian.h"
#include "storage/plan_codec.h"

namespace gkeys {
namespace storage {

Status Snapshot::Save(
    Store& store, const Graph& g, const KeySet& keys, const MatchPlan& plan,
    const MatchResult& result, Algorithm algorithm,
    const std::unordered_map<std::string, NodeId>* entity_names) {
  if (!plan.valid())
    return Status::InvalidArgument("Snapshot::Save: empty plan");
  if (&plan.graph() != &g || &plan.keys() != &keys) {
    return Status::InvalidArgument(
        "Snapshot::Save: plan was compiled against a different graph/keys");
  }
  if (!g.finalized()) {
    return Status::FailedPrecondition(
        "Snapshot::Save: graph has unapplied mutations (Finalize first)");
  }

  SnapshotMeta meta;
  meta.algorithm = algorithm;
  GKEYS_RETURN_IF_ERROR(PlanCodec::EncodeGraph(g, store, &meta));
  GKEYS_RETURN_IF_ERROR(store.Put("K", ToDsl(keys)));
  if (entity_names != nullptr && !entity_names->empty()) {
    // Sorted by name so the record is deterministic across runs.
    std::map<std::string_view, NodeId> sorted(entity_names->begin(),
                                              entity_names->end());
    std::string t;
    PutVarint(t, sorted.size());
    for (const auto& [name, node] : sorted) {
      PutVarint(t, name.size());
      t.append(name);
      PutVarint(t, node);
    }
    GKEYS_RETURN_IF_ERROR(store.Put("T", std::move(t)));
    meta.has_entity_names = true;
  }
  GKEYS_RETURN_IF_ERROR(PlanCodec::EncodePlan(plan, store, &meta));
  GKEYS_RETURN_IF_ERROR(PlanCodec::EncodeResult(result, store, &meta));
  return PlanCodec::EncodeMeta(meta, store);
}

StatusOr<Snapshot> Snapshot::Load(const Store& store) {
  auto meta = PlanCodec::DecodeMeta(store);
  if (!meta.ok()) return meta.status();

  Snapshot snap;
  snap.algorithm_ = meta->algorithm;

  auto graph = PlanCodec::DecodeGraph(store, *meta);
  if (!graph.ok()) return graph.status();
  snap.graph_ = std::make_unique<Graph>(std::move(graph).value());

  auto dsl = store.Get("K");
  if (!dsl.ok())
    return Status::ParseError("corrupt snapshot: missing key-set record");
  snap.keys_ = std::make_unique<KeySet>();
  Status st = snap.keys_->AddFromDsl(*dsl);
  if (!st.ok())
    return Status::ParseError("corrupt snapshot: bad key set: " +
                              st.message());

  if (meta->has_entity_names) {
    auto t = store.Get("T");
    if (!t.ok())
      return Status::ParseError(
          "corrupt snapshot: missing entity-name record");
    ByteReader r(*t);
    uint64_t count = 0;
    if (!r.ReadVarint(&count) || count > t->size())
      return Status::ParseError("corrupt snapshot: bad entity-name count");
    snap.entity_names_.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t len = 0;
      std::string_view name;
      uint32_t node = 0;
      if (!r.ReadVarint(&len) || !r.ReadBytes(len, &name) ||
          !r.ReadVarint32(&node) || node >= snap.graph_->NumNodes()) {
        return Status::ParseError("corrupt snapshot: bad entity-name entry");
      }
      snap.entity_names_.emplace(std::string(name), node);
    }
    if (!r.AtEnd())
      return Status::ParseError(
          "corrupt snapshot: trailing bytes in entity-name record");
  }

  auto plan = PlanCodec::DecodePlan(store, *meta, *snap.graph_, *snap.keys_);
  if (!plan.ok()) return plan.status();
  snap.plan_ = std::move(plan).value();

  auto result = PlanCodec::DecodeResult(store, *meta);
  if (!result.ok()) return result.status();
  snap.result_ = std::move(result).value();

  return snap;
}

StatusOr<MatchResult> Snapshot::Resume(const Matcher& matcher,
                                       const GraphDelta& pending) {
  if (pending.empty()) return result_;

  auto dirty = graph_->Apply(pending);
  GKEYS_RETURN_IF_ERROR(dirty.status());
  auto patched = plan_.Patch(pending);
  GKEYS_RETURN_IF_ERROR(patched.status());
  auto result = matcher.Rematch(*patched, result_, pending);
  GKEYS_RETURN_IF_ERROR(result.status());
  plan_ = std::move(patched).value();
  result_ = *result;
  return result;
}

IngestStats Snapshot::Ingest(
    const Matcher& matcher,
    std::unordered_map<std::string, NodeId>& entity_names,
    const IngestSource& source, const IngestOptions& opts,
    const IngestObserver& observer) {
  IngestSession session;
  session.graph = graph_.get();
  session.plan = &plan_;
  session.result = &result_;
  session.entity_names = &entity_names;
  return RunIngestPipeline(matcher, session, source, opts, observer);
}

}  // namespace storage

// Defined here (not in core/matcher.cc) so the core library stays layered
// below the storage subsystem.
StatusOr<MatchResult> Matcher::Resume(storage::Snapshot& snapshot,
                                      const GraphDelta& pending) const {
  return snapshot.Resume(*this, pending);
}

IngestStats Matcher::IngestStream(
    storage::Snapshot& snapshot,
    std::unordered_map<std::string, NodeId>& entity_names,
    const IngestSource& source, const IngestOptions& opts,
    const IngestObserver& observer) const {
  return snapshot.Ingest(*this, entity_names, source, opts, observer);
}

}  // namespace gkeys
