#ifndef GKEYS_STORAGE_STORE_H_
#define GKEYS_STORAGE_STORE_H_

#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace gkeys {
namespace storage {

/// A pluggable ordered key-value store — the persistence seam the
/// snapshot codecs write through. Snapshot::Save/Load only ever talk to
/// this interface, so backends are interchangeable: the single-file
/// mmap'd MmapStore ships first, and the planned out-of-core paged
/// backend and a remote matcher-service store slot in behind the same
/// four calls without touching the codecs.
///
/// Contract:
///   - Keys are arbitrary byte strings ordered lexicographically
///     (unsigned bytes). The snapshot key layout uses big-endian
///     fixed-width suffixes precisely so byte order == numeric order.
///   - Put stages `value` under `key`, replacing any earlier Put of the
///     same key. Writes become durable and readable only after Flush.
///   - Get returns a view valid until the next Flush or the store's
///     destruction; NotFound when the key is absent.
///   - Scan visits every key with prefix `prefix` in ascending key
///     order; a non-OK status from the callback aborts the scan and is
///     returned as-is.
///
/// Implementations are single-threaded: one writer, or concurrent
/// readers after the last Flush.
class Store {
 public:
  virtual ~Store() = default;

  using ScanFn =
      std::function<Status(std::string_view key, std::string_view value)>;

  virtual Status Put(std::string key, std::string value) = 0;
  virtual Status Flush() = 0;
  virtual StatusOr<std::string_view> Get(std::string_view key) const = 0;
  virtual Status Scan(std::string_view prefix, const ScanFn& fn) const = 0;
};

}  // namespace storage
}  // namespace gkeys

#endif  // GKEYS_STORAGE_STORE_H_
