#include "storage/file_ops.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace gkeys {
namespace storage {
namespace fileops {

namespace {

FaultInjector* g_injector = nullptr;

Status ErrnoError(const std::string& what, const std::string& path, int err) {
  return Status::IoError(what + " " + path + ": " + std::strerror(err));
}

/// Consults the installed injector; returns the action to apply.
FaultAction Consult(OpKind kind, const std::string& path) {
  if (g_injector == nullptr) return {};
  return g_injector->OnOp(kind, path);
}

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kOpen: return "open";
    case OpKind::kWrite: return "write";
    case OpKind::kFsync: return "fsync";
    case OpKind::kRename: return "rename";
    case OpKind::kFsyncDir: return "fsync_dir";
    case OpKind::kTruncate: return "truncate";
  }
  return "unknown";
}

void SetFaultInjector(FaultInjector* injector) { g_injector = injector; }
FaultInjector* GetFaultInjector() { return g_injector; }

FaultAction ScriptedFaultInjector::OnOp(OpKind kind, const std::string&) {
  if (crashed) {
    FaultAction dead;
    dead.fail_errno = EIO;
    return dead;
  }
  if (has_kind_filter && kind != only_kind) return {};
  int64_t index = ops_seen++;
  if (fail_at >= 0 && index == fail_at) {
    fired = true;
    if (crash_after) crashed = true;
    return action;
  }
  return {};
}

StatusOr<int> OpenForWrite(const std::string& path, bool truncate,
                           bool append) {
  FaultAction act = Consult(OpKind::kOpen, path);
  if (act.fail_errno != 0)
    return ErrnoError("cannot open", path, act.fail_errno);
  int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : 0) |
              (append ? O_APPEND : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return ErrnoError("cannot open", path, errno);
  return fd;
}

StatusOr<int> OpenForRead(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoError("cannot open", path, errno);
  return fd;
}

namespace {

/// The raw full-write loop: retries EINTR and short writes until every
/// byte is accepted or the kernel errors.
Status RawWriteFull(int fd, std::string_view data, const std::string& path) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("write to", path, errno);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFull(int fd, std::string_view data, const std::string& path) {
  FaultAction act = Consult(OpKind::kWrite, path);
  if (act.flip_mask != 0 && act.flip_at < data.size()) {
    // Corrupt the byte on its way to disk; the write itself "succeeds",
    // so only a checksum can catch this downstream.
    std::string corrupted(data);
    corrupted[act.flip_at] =
        static_cast<char>(corrupted[act.flip_at] ^ act.flip_mask);
    if (act.fail_errno == 0) return RawWriteFull(fd, corrupted, path);
    // Torn prefix of the corrupted buffer, then the scripted failure.
    Status st = RawWriteFull(
        fd, std::string_view(corrupted).substr(
                0, std::min(act.write_prefix, corrupted.size())),
        path);
    if (!st.ok()) return st;
    return ErrnoError("write to", path, act.fail_errno);
  }
  if (act.fail_errno != 0) {
    // Torn write: the leading write_prefix bytes reach the file, then
    // the op fails (ENOSPC mid-record, a crash mid-write, ...).
    size_t prefix = std::min(act.write_prefix, data.size());
    if (prefix > 0) {
      Status st = RawWriteFull(fd, data.substr(0, prefix), path);
      if (!st.ok()) return st;
    }
    return ErrnoError("write to", path, act.fail_errno);
  }
  return RawWriteFull(fd, data, path);
}

Status Fsync(int fd, const std::string& path) {
  FaultAction act = Consult(OpKind::kFsync, path);
  if (act.fail_errno != 0) return ErrnoError("fsync", path, act.fail_errno);
  if (::fsync(fd) != 0) return ErrnoError("fsync", path, errno);
  return Status::OK();
}

Status Rename(const std::string& from, const std::string& to) {
  FaultAction act = Consult(OpKind::kRename, from);
  if (act.fail_errno != 0)
    return ErrnoError("cannot rename", from + " to " + to, act.fail_errno);
  if (::rename(from.c_str(), to.c_str()) != 0)
    return ErrnoError("cannot rename", from + " to " + to, errno);
  return Status::OK();
}

Status FsyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  FaultAction act = Consult(OpKind::kFsyncDir, dir);
  if (act.fail_errno != 0)
    return ErrnoError("fsync directory", dir, act.fail_errno);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoError("cannot open directory", dir, errno);
  int rc = ::fsync(fd);
  int err = errno;
  ::close(fd);
  if (rc != 0) return ErrnoError("fsync directory", dir, err);
  return Status::OK();
}

Status Truncate(const std::string& path, uint64_t size) {
  FaultAction act = Consult(OpKind::kTruncate, path);
  if (act.fail_errno != 0)
    return ErrnoError("cannot truncate", path, act.fail_errno);
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0)
    return ErrnoError("cannot truncate", path, errno);
  return Status::OK();
}

void Close(int fd) { ::close(fd); }

}  // namespace fileops
}  // namespace storage
}  // namespace gkeys
