#ifndef GKEYS_STORAGE_FAULT_STORE_H_
#define GKEYS_STORAGE_FAULT_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "storage/store.h"

namespace gkeys {
namespace storage {

/// A Store wrapper that injects scripted failures at the Store seam —
/// the FESTIval-style layering: the fault layer is a wrapper any backend
/// slots under, not a fork of one. Where the fileops shim
/// (storage/file_ops.h) faults the OS primitives BELOW MmapStore and
/// DeltaLog, this wrapper faults the four Store calls ABOVE any backend,
/// which is what the codec robustness tests need: what do Snapshot::Save
/// and Load do when the Nth Put dies with ENOSPC, when Flush fails, when
/// a Get hands back flipped or truncated bytes?
///
/// All scripting is by 0-based operation index per call kind. Counters
/// keep counting after a fault fires, so a dry run (no script) measures
/// how many injection points a scenario has and a harness can then
/// enumerate them.
class FaultInjectingStore : public Store {
 public:
  struct Script {
    /// Fail the Nth Put / Flush / Get / Scan with `error` (-1 = never).
    int64_t fail_put_at = -1;
    int64_t fail_flush_at = -1;
    int64_t fail_get_at = -1;
    int64_t fail_scan_at = -1;
    Status error = Status::IoError("injected fault");
    /// When set, Get/Scan of exactly this key serve a tampered value:
    /// byte `corrupt_at` XOR `corrupt_mask` (if in range), and the value
    /// truncated to `truncate_to` bytes when that is shorter.
    std::string corrupt_key;
    size_t corrupt_at = 0;
    uint8_t corrupt_mask = 0;
    size_t truncate_to = SIZE_MAX;
  };

  /// Wraps `base`, which must outlive this store.
  explicit FaultInjectingStore(Store& base) : base_(base) {}

  FaultInjectingStore& script(Script s) {
    script_ = std::move(s);
    return *this;
  }
  const Script& script() const { return script_; }

  int64_t puts() const { return puts_; }
  int64_t flushes() const { return flushes_; }
  int64_t gets() const { return gets_; }
  int64_t scans() const { return scans_; }

  Status Put(std::string key, std::string value) override;
  Status Flush() override;
  StatusOr<std::string_view> Get(std::string_view key) const override;
  Status Scan(std::string_view prefix, const ScanFn& fn) const override;

 private:
  /// Applies the corrupt_key tampering to a served value, materializing
  /// it into `scratch_` (views into the base store stay untouched).
  std::string_view Tamper(std::string_view key, std::string_view value) const;

  Store& base_;
  Script script_;
  // Read-side counters are mutable: Get/Scan are const on Store.
  int64_t puts_ = 0;
  int64_t flushes_ = 0;
  mutable int64_t gets_ = 0;
  mutable int64_t scans_ = 0;
  mutable std::string scratch_;
};

}  // namespace storage
}  // namespace gkeys

#endif  // GKEYS_STORAGE_FAULT_STORE_H_
