#ifndef GKEYS_STORAGE_MMAP_STORE_H_
#define GKEYS_STORAGE_MMAP_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "storage/store.h"

namespace gkeys {
namespace storage {

/// The first Store backend: one immutable snapshot file, mmap'd for
/// reading (stardust-style layout — sorted length-prefixed records plus
/// a fixed-width offset index, so Get is a binary search over the map
/// with zero deserialization).
///
/// File layout (all integers big-endian):
///
///     [0,  8)   magic "GKEYSNAP"
///     [8, 12)   format version (currently 1)
///     [12, 20)  record count
///     [20, 28)  data-region size in bytes
///     [28, 36)  FNV-1a-64 checksum of the data region
///     [36, ..)  data region: per record
///                   be32 key-length, be32 value-length, key, value
///               sorted ascending by key
///     tail      record count × be64 record offset (into the data region)
///
/// Write path: Create() stages Puts in memory; Flush() writes the whole
/// file to `path + ".tmp"` (full-write loop), fsyncs it, renames it into
/// place, and fsyncs the parent directory (a torn write never replaces a
/// previous good snapshot, and a rename that survives a crash always has
/// its bytes behind it), then maps it for reading. All file primitives
/// go through storage/file_ops.h, so tests can fault any step.
/// Read path: Open() maps an existing file read-only; Put on it is
/// FailedPrecondition. Every field of an opened file is bounds- and
/// checksum-validated before use, so truncated or corrupted files (and
/// version mismatches) surface as ParseError/IoError Status — never a
/// crash.
class MmapStore : public Store {
 public:
  /// A store that will write a new snapshot file at `path` on Flush.
  static StatusOr<std::unique_ptr<MmapStore>> Create(std::string path);

  /// Maps an existing snapshot file read-only, validating the header,
  /// the checksum, and every record's bounds. ParseError on corruption
  /// or a format-version mismatch; IoError when the file cannot be
  /// opened or mapped.
  static StatusOr<std::unique_ptr<MmapStore>> Open(std::string path);

  ~MmapStore() override;

  MmapStore(const MmapStore&) = delete;
  MmapStore& operator=(const MmapStore&) = delete;

  Status Put(std::string key, std::string value) override;
  Status Flush() override;
  StatusOr<std::string_view> Get(std::string_view key) const override;
  Status Scan(std::string_view prefix, const ScanFn& fn) const override;

  /// Size in bytes of the flushed / opened file (0 before Flush).
  uint64_t file_bytes() const { return file_bytes_; }
  size_t num_records() const;
  const std::string& path() const { return path_; }

  /// The current snapshot-file format version Create() writes.
  static constexpr uint32_t kFormatVersion = 1;

 private:
  explicit MmapStore(std::string path) : path_(std::move(path)) {}

  Status MapFile();
  void Unmap();
  /// Record `i`'s key/value views; false when its bounds are corrupt.
  bool RecordAt(size_t i, std::string_view* key, std::string_view* value) const;
  /// Index of the first record with key >= `key`.
  size_t LowerBound(std::string_view key) const;

  std::string path_;
  bool writable_ = false;
  // Write staging (Create path, before Flush).
  std::map<std::string, std::string, std::less<>> staged_;
  // Read state (after Open or Flush).
  char* mapped_ = nullptr;
  size_t mapped_size_ = 0;
  std::string_view data_;   // the record region
  const char* index_ = nullptr;  // record-offset index (be64 each)
  uint64_t record_count_ = 0;
  uint64_t file_bytes_ = 0;
};

}  // namespace storage
}  // namespace gkeys

#endif  // GKEYS_STORAGE_MMAP_STORE_H_
