#ifndef GKEYS_STORAGE_SNAPSHOT_H_
#define GKEYS_STORAGE_SNAPSHOT_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "core/em_common.h"
#include "core/match_plan.h"
#include "core/matcher.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "keys/key.h"
#include "storage/store.h"

namespace gkeys {
namespace storage {

/// One complete matching session persisted behind a Store: the graph, the
/// compiled plan, and the result with its provenance index. Save writes a
/// run's state; Load rebuilds a self-owning session (the Snapshot owns
/// the graph and key set the restored plan references); Resume continues
/// it incrementally — Apply the deltas that arrived while the process was
/// down, Patch, Rematch — skipping the expensive compile phases entirely.
///
///     // First run:
///     auto store = MmapStore::Create(path);
///     Snapshot::Save(**store, g, keys, plan, result, algorithm);
///     (*store)->Flush();
///
///     // After restart:
///     auto store = MmapStore::Open(path);
///     auto snap = Snapshot::Load(**store);
///     auto result = Matcher(snap->algorithm()).Resume(*snap, pending);
///
/// Resume updates the snapshot in place (post-delta graph, plan, result),
/// so successive calls chain exactly like the in-memory incremental
/// lifecycle; Save the snapshot's state again to persist the new point.
class Snapshot {
 public:
  /// Serializes a session into `store` (call Store::Flush afterwards to
  /// make it durable). `plan` must be compiled against exactly `g` and
  /// `keys`, and `result` should be the result of running `algorithm`
  /// over it — Resume seeds from it. `entity_names`, when given, is the
  /// CLI's ent-token table (LoadedGraph::entities); it rides along so
  /// delta files parse against a loaded snapshot.
  static Status Save(
      Store& store, const Graph& g, const KeySet& keys,
      const MatchPlan& plan, const MatchResult& result, Algorithm algorithm,
      const std::unordered_map<std::string, NodeId>* entity_names = nullptr);

  /// Rebuilds the session from `store`. Every record is bounds-validated:
  /// corrupt or truncated payloads return ParseError, never crash.
  static StatusOr<Snapshot> Load(const Store& store);

  // Snapshots own their graph/keys (the plan references them), so they
  // move but do not copy.
  Snapshot(Snapshot&&) = default;
  Snapshot& operator=(Snapshot&&) = default;

  const Graph& graph() const { return *graph_; }
  const KeySet& keys() const { return *keys_; }
  const MatchPlan& plan() const { return plan_; }
  const MatchResult& result() const { return result_; }
  Algorithm algorithm() const { return algorithm_; }
  /// The ent-token table saved alongside (empty when none was).
  const std::unordered_map<std::string, NodeId>& entity_names() const {
    return entity_names_;
  }

  /// Mutable graph access for staging pending deltas against the restored
  /// session (GraphDelta's constructor takes the target graph). Do not
  /// Apply deltas directly — Resume owns the Apply → Patch → Rematch
  /// sequencing.
  Graph& mutable_graph() { return *graph_; }

  /// The restart path: applies `pending` to the restored graph, patches
  /// the restored plan, and rematches seeded from the restored result —
  /// byte-identical to what an uninterrupted process would have computed.
  /// The snapshot advances to the post-delta state, so Resume calls
  /// chain. An empty `pending` returns the stored result unchanged.
  /// Usually invoked through Matcher::Resume.
  StatusOr<MatchResult> Resume(const Matcher& matcher,
                               const GraphDelta& pending);

  /// Streaming ingest over this session: runs the staged pipeline
  /// (core/ingest_pipeline.h) against the snapshot's graph/plan/result,
  /// advancing them in place batch by batch — the streaming counterpart
  /// of repeated Resume calls. `entity_names` is the ent-token table
  /// batches parse against (usually RecoveredSession::entity_names,
  /// which extends entity_names()); it gains each committed batch's new
  /// tokens. Usually invoked through Matcher::IngestStream.
  IngestStats Ingest(const Matcher& matcher,
                     std::unordered_map<std::string, NodeId>& entity_names,
                     const IngestSource& source, const IngestOptions& opts,
                     const IngestObserver& observer);

 private:
  Snapshot() = default;

  // unique_ptr keeps the addresses the plan references stable across
  // Snapshot moves.
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<KeySet> keys_;
  MatchPlan plan_;
  MatchResult result_;
  Algorithm algorithm_ = Algorithm::kEmOptVc;
  std::unordered_map<std::string, NodeId> entity_names_;
};

}  // namespace storage
}  // namespace gkeys

#endif  // GKEYS_STORAGE_SNAPSHOT_H_
