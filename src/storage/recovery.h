#ifndef GKEYS_STORAGE_RECOVERY_H_
#define GKEYS_STORAGE_RECOVERY_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "core/matcher.h"
#include "storage/snapshot.h"

namespace gkeys {
namespace storage {

/// What Recover did, for operators and the `gkeys recover` subcommand.
struct RecoveryReport {
  /// Generation of the snapshot recovery restored from.
  uint64_t generation = 0;
  /// Newer snapshots that failed validation and were skipped (a crash
  /// mid-rotation can leave at most a torn temp, so this is normally 0;
  /// nonzero means on-disk corruption of an installed snapshot).
  size_t snapshots_skipped = 0;
  /// Acknowledged log batches replayed on top of the snapshot.
  size_t batches_replayed = 0;
  /// Torn, never-acknowledged tail records dropped from the log.
  size_t batches_truncated = 0;
  /// Identified pairs in the recovered result.
  size_t pairs = 0;
};

/// A recovered session: the state machine's output, ready to serve
/// queries or continue ingesting.
struct RecoveredSession {
  Snapshot snapshot;
  /// The snapshot's entity-name table extended with every binding the
  /// replayed text batches introduced — parse NEW delta files against
  /// this map, not snapshot.entity_names().
  std::unordered_map<std::string, NodeId> entity_names;
  RecoveryReport report;
};

/// The recovery state machine over a DurableDir (usually invoked as
/// Matcher::Recover):
///
///   1. PICK    — probe snapshots newest-generation-first; the first
///                that opens and loads cleanly is the base (corrupt
///                newer ones are skipped and counted).
///   2. REPLAY  — DeltaLog::Replay the base's write-ahead log: the
///                surviving records are the acknowledged batches; a torn
///                tail is truncated (counted, never an error); a missing,
///                empty, or header-only log is a clean no-op.
///   3. APPLY   — each batch runs through the incremental lifecycle
///                (Graph::Apply → MatchPlan::Patch → Matcher::Rematch via
///                Snapshot::Resume), so the recovered result is
///                byte-identical to what an uninterrupted process had.
///                Replay runs under `matcher` reconfigured to the
///                snapshot's stored algorithm when they differ (the
///                stored plan was compiled for it); processors carry
///                over.
///
/// Status contract: NotFound when `dir` has no snapshot at all;
/// kDataLoss ONLY when an ACKNOWLEDGED batch is unrecoverable — every
/// snapshot corrupt, a checksum-valid log record that fails to decode or
/// apply, a mid-log corruption with acknowledged records after it, or a
/// log whose generation does not match its snapshot. Crashes, torn
/// tails, and lost unacknowledged batches never produce kDataLoss.
StatusOr<RecoveredSession> Recover(const std::string& dir,
                                   const Matcher& matcher);

}  // namespace storage
}  // namespace gkeys

#endif  // GKEYS_STORAGE_RECOVERY_H_
