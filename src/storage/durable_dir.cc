#include "storage/durable_dir.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "storage/mmap_store.h"
#include "storage/snapshot.h"

namespace gkeys {
namespace storage {

namespace {

std::string GenName(const char* prefix, uint64_t generation,
                    const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%06llu%s", prefix,
                static_cast<unsigned long long>(generation), suffix);
  return buf;
}

/// Parses "<prefix>NNNNNN<suffix>" back to a generation; false otherwise.
bool ParseGenName(const std::string& name, const char* prefix,
                  const char* suffix, uint64_t* generation) {
  size_t plen = std::strlen(prefix), slen = std::strlen(suffix);
  if (name.size() <= plen + slen) return false;
  if (name.compare(0, plen, prefix) != 0) return false;
  if (name.compare(name.size() - slen, slen, suffix) != 0) return false;
  uint64_t g = 0;
  for (size_t i = plen; i < name.size() - slen; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    g = g * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *generation = g;
  return true;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

}  // namespace

std::string DurableDir::SnapshotPath(uint64_t generation) const {
  return dir_ + "/" + GenName("snap.", generation, ".gks");
}

std::string DurableDir::WalPath(uint64_t generation) const {
  return dir_ + "/" + GenName("wal.", generation, ".log");
}

StatusOr<std::vector<uint64_t>> DurableDir::ListGenerations(
    const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr)
    return Status::IoError("cannot open directory " + dir + ": " +
                           std::strerror(errno));
  std::vector<uint64_t> gens;
  while (struct dirent* ent = ::readdir(d)) {
    uint64_t g = 0;
    if (ParseGenName(ent->d_name, "snap.", ".gks", &g)) gens.push_back(g);
  }
  ::closedir(d);
  std::sort(gens.rbegin(), gens.rend());
  return gens;
}

StatusOr<DurableDir> DurableDir::Open(std::string dir) {
  if (dir.empty()) return Status::InvalidArgument("DurableDir: empty path");
  while (dir.size() > 1 && dir.back() == '/') dir.pop_back();
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
    return Status::IoError("cannot create directory " + dir + ": " +
                           std::strerror(errno));

  DurableDir out(std::move(dir));
  auto gens = ListGenerations(out.dir_);
  if (!gens.ok()) return gens.status();
  if (!gens->empty()) {
    out.generation_ = gens->front();
    // Re-attach to the current generation's log so ingestion can resume
    // right where the last process stopped; a torn tail (crash mid-
    // append) is truncated away here. A missing or unusable log leaves
    // wal_ null: AppendDelta then demands a fresh SaveSnapshot, and
    // recovery still works from the snapshot alone.
    std::string wal_path = out.WalPath(out.generation_);
    if (FileExists(wal_path)) {
      auto wal = DeltaLog::OpenForAppend(wal_path, nullptr);
      if (wal.ok() && (*wal)->generation() == out.generation_) {
        out.wal_ = std::move(*wal);
      }
    }
  }
  return out;
}

Status DurableDir::SaveSnapshot(
    const Graph& g, const KeySet& keys, const MatchPlan& plan,
    const MatchResult& result, Algorithm algorithm,
    const std::unordered_map<std::string, NodeId>* entity_names,
    int keep_last) {
  if (keep_last < 1)
    return Status::InvalidArgument("DurableDir: keep_last must be >= 1");
  const uint64_t next = generation_ + 1;

  // Snapshot first. MmapStore::Flush is the atomic install point
  // (write-temp → fsync → rename → dir-fsync); any failure before the
  // rename leaves snap.<generation_> as the newest valid snapshot.
  auto store = MmapStore::Create(SnapshotPath(next));
  if (!store.ok()) return store.status();
  GKEYS_RETURN_IF_ERROR(Snapshot::Save(**store, g, keys, plan, result,
                                       algorithm, entity_names));
  // From here on the install may land even if we return an error (the
  // rename can be durable while a later step fails), and recovery would
  // then pick snap.<next> and never read the old log again. Stop
  // acknowledging appends into it NOW: until a SaveSnapshot succeeds,
  // AppendDelta fails FailedPrecondition instead of acking batches that
  // recovery could not see.
  wal_.reset();
  GKEYS_RETURN_IF_ERROR((*store)->Flush());

  // Fresh log tied to the new snapshot. If THIS fails (ENOSPC after the
  // rename landed), the new snapshot is already valid and log-less —
  // recovery reads it as "generation next, zero pending batches", which
  // is exactly the durable state; we still report the error and keep
  // generation_ unbumped so a retry re-installs cleanly.
  auto wal = DeltaLog::Create(WalPath(next), next);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(*wal);
  generation_ = next;

  // Prune beyond keep-last-N, oldest first; best-effort (a leftover old
  // generation is dead weight, never a correctness problem).
  if (next > static_cast<uint64_t>(keep_last)) {
    uint64_t last_kept = next - static_cast<uint64_t>(keep_last);
    auto gens = ListGenerations(dir_);
    if (gens.ok()) {
      for (uint64_t g_old : *gens) {
        if (g_old > last_kept) continue;
        std::remove(SnapshotPath(g_old).c_str());
        std::remove(WalPath(g_old).c_str());
      }
    }
  }
  return Status::OK();
}

Status DurableDir::AppendPayload(char tag, std::string_view body) {
  if (wal_ == nullptr)
    return Status::FailedPrecondition(
        "DurableDir " + dir_ +
        ": no writable log for the current generation; SaveSnapshot first");
  std::string payload;
  payload.reserve(1 + body.size());
  payload.push_back(tag);
  payload.append(body);
  return wal_->Append(payload);
}

Status DurableDir::AppendDelta(const GraphDelta& delta) {
  return AppendPayload(kBinaryDeltaTag, EncodeDelta(delta));
}

Status DurableDir::AppendDeltaText(std::string_view text) {
  return AppendPayload(kTextDeltaTag, text);
}

}  // namespace storage
}  // namespace gkeys
