#include "storage/mmap_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/endian.h"
#include "common/hash.h"
#include "storage/file_ops.h"

namespace gkeys {
namespace storage {

namespace {

constexpr char kMagic[8] = {'G', 'K', 'E', 'Y', 'S', 'N', 'A', 'P'};
constexpr size_t kHeaderBytes = 36;

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::ParseError("snapshot file " + path + ": " + what);
}

}  // namespace

StatusOr<std::unique_ptr<MmapStore>> MmapStore::Create(std::string path) {
  if (path.empty())
    return Status::InvalidArgument("MmapStore::Create: empty path");
  auto store = std::unique_ptr<MmapStore>(new MmapStore(std::move(path)));
  store->writable_ = true;
  return store;
}

StatusOr<std::unique_ptr<MmapStore>> MmapStore::Open(std::string path) {
  auto store = std::unique_ptr<MmapStore>(new MmapStore(std::move(path)));
  GKEYS_RETURN_IF_ERROR(store->MapFile());
  return store;
}

MmapStore::~MmapStore() { Unmap(); }

void MmapStore::Unmap() {
  if (mapped_ != nullptr) {
    ::munmap(mapped_, mapped_size_);
    mapped_ = nullptr;
    mapped_size_ = 0;
  }
  data_ = {};
  index_ = nullptr;
  record_count_ = 0;
}

Status MmapStore::Put(std::string key, std::string value) {
  if (!writable_)
    return Status::FailedPrecondition(
        "MmapStore: store opened read-only; Put requires Create()");
  staged_[std::move(key)] = std::move(value);
  return Status::OK();
}

Status MmapStore::Flush() {
  if (!writable_)
    return Status::FailedPrecondition(
        "MmapStore: store opened read-only; nothing to flush");

  // Data region: records sorted by key (std::map iteration order).
  std::string data;
  std::string index;
  for (const auto& [key, value] : staged_) {
    PutBe64(index, data.size());
    PutBe32(data, static_cast<uint32_t>(key.size()));
    PutBe32(data, static_cast<uint32_t>(value.size()));
    data += key;
    data += value;
  }

  std::string file;
  file.reserve(kHeaderBytes + data.size() + index.size());
  file.append(kMagic, sizeof(kMagic));
  PutBe32(file, kFormatVersion);
  PutBe64(file, staged_.size());
  PutBe64(file, data.size());
  PutBe64(file, Fnv1a64(data));
  file += data;
  file += index;

  // Write-temp, fsync, rename, fsync-parent-dir: a torn write never
  // replaces a good snapshot, and a survived rename always has the bytes
  // behind it (renaming an unfsynced temp can outlive its contents).
  // Every primitive goes through the fileops shim, so the fault-injection
  // tests can fail or tear any step. On any failure the previous file at
  // `path_` is untouched; the temp is removed best-effort.
  const std::string tmp = path_ + ".tmp";
  Status st;
  {
    auto fd = fileops::OpenForWrite(tmp, /*truncate=*/true, /*append=*/false);
    if (!fd.ok()) return fd.status();
    st = fileops::WriteFull(*fd, file, tmp);
    if (st.ok()) st = fileops::Fsync(*fd, tmp);
    fileops::Close(*fd);
  }
  if (st.ok()) st = fileops::Rename(tmp, path_);
  if (!st.ok()) {
    std::remove(tmp.c_str());
    return st;
  }
  GKEYS_RETURN_IF_ERROR(fileops::FsyncParentDir(path_));

  staged_.clear();
  writable_ = false;
  Unmap();
  return MapFile();
}

Status MmapStore::MapFile() {
  auto fd_or = fileops::OpenForRead(path_);
  if (!fd_or.ok()) return fd_or.status();
  int fd = *fd_or;
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    fileops::Close(fd);
    return Status::IoError("cannot stat " + path_);
  }
  size_t size = static_cast<size_t>(st.st_size);
  if (size < kHeaderBytes) {
    fileops::Close(fd);
    return Corrupt(path_, "truncated header (" + std::to_string(size) +
                              " bytes)");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  fileops::Close(fd);
  if (map == MAP_FAILED)
    return Status::IoError("cannot mmap " + path_ + ": " +
                           std::strerror(errno));
  mapped_ = static_cast<char*>(map);
  mapped_size_ = size;
  file_bytes_ = size;

  const char* p = mapped_;
  if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0) {
    Unmap();
    return Corrupt(path_, "bad magic (not a gkeys snapshot)");
  }
  uint32_t version = GetBe32(p + 8);
  if (version != kFormatVersion) {
    Unmap();
    return Corrupt(path_, "format version " + std::to_string(version) +
                              " unsupported (this build reads version " +
                              std::to_string(kFormatVersion) + ")");
  }
  uint64_t count = GetBe64(p + 12);
  uint64_t data_size = GetBe64(p + 20);
  uint64_t checksum = GetBe64(p + 28);
  // count*8 overflow-safe bound: both factors fit the file size check.
  if (data_size > size - kHeaderBytes ||
      count > (size - kHeaderBytes - data_size) / 8 ||
      kHeaderBytes + data_size + count * 8 != size) {
    Unmap();
    return Corrupt(path_, "header geometry does not match file size");
  }
  data_ = std::string_view(p + kHeaderBytes, data_size);
  index_ = p + kHeaderBytes + data_size;
  record_count_ = count;
  if (Fnv1a64(data_) != checksum) {
    Unmap();
    return Corrupt(path_, "checksum mismatch (corrupted data region)");
  }
  // Validate every record's bounds once, so reads never have to.
  std::string_view prev_key;
  for (size_t i = 0; i < record_count_; ++i) {
    std::string_view key, value;
    if (!RecordAt(i, &key, &value)) {
      Unmap();
      return Corrupt(path_, "record " + std::to_string(i) +
                                " overruns the data region");
    }
    if (i > 0 && !(prev_key < key)) {
      Unmap();
      return Corrupt(path_, "records not in strictly ascending key order");
    }
    prev_key = key;
  }
  return Status::OK();
}

bool MmapStore::RecordAt(size_t i, std::string_view* key,
                         std::string_view* value) const {
  uint64_t off = GetBe64(index_ + i * 8);
  if (off > data_.size() || data_.size() - off < 8) return false;
  uint32_t klen = GetBe32(data_.data() + off);
  uint32_t vlen = GetBe32(data_.data() + off + 4);
  uint64_t payload = static_cast<uint64_t>(klen) + vlen;
  if (payload > data_.size() - off - 8) return false;
  *key = data_.substr(off + 8, klen);
  *value = data_.substr(off + 8 + klen, vlen);
  return true;
}

size_t MmapStore::LowerBound(std::string_view key) const {
  size_t lo = 0, hi = record_count_;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    std::string_view k, v;
    RecordAt(mid, &k, &v);  // bounds validated at open
    if (k < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t MmapStore::num_records() const {
  return writable_ ? staged_.size() : record_count_;
}

StatusOr<std::string_view> MmapStore::Get(std::string_view key) const {
  if (writable_) {
    auto it = staged_.find(key);
    if (it == staged_.end())
      return Status::NotFound("key not found: " + std::string(key));
    return std::string_view(it->second);
  }
  if (mapped_ == nullptr)
    return Status::FailedPrecondition("MmapStore: no file mapped");
  size_t i = LowerBound(key);
  std::string_view k, v;
  if (i < record_count_ && RecordAt(i, &k, &v) && k == key) return v;
  return Status::NotFound("key not found: " + std::string(key));
}

Status MmapStore::Scan(std::string_view prefix, const ScanFn& fn) const {
  if (writable_) {
    for (auto it = staged_.lower_bound(prefix); it != staged_.end(); ++it) {
      std::string_view key = it->first;
      if (key.substr(0, prefix.size()) != prefix) break;
      GKEYS_RETURN_IF_ERROR(fn(key, it->second));
    }
    return Status::OK();
  }
  if (mapped_ == nullptr)
    return Status::FailedPrecondition("MmapStore: no file mapped");
  for (size_t i = LowerBound(prefix); i < record_count_; ++i) {
    std::string_view key, value;
    RecordAt(i, &key, &value);  // bounds validated at open
    if (key.substr(0, prefix.size()) != prefix) break;
    GKEYS_RETURN_IF_ERROR(fn(key, value));
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace gkeys
