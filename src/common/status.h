#ifndef GKEYS_COMMON_STATUS_H_
#define GKEYS_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace gkeys {

/// Error codes used across the library. Modeled after the usual
/// database-engine Status idiom (exceptions are not used).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kInternal,
  kIoError,
  kParseError,
  kFailedPrecondition,
  kCancelled,
  kDeadlineExceeded,
  kDataLoss,
};

/// A lightweight success/error result. `Status::OK()` is the success value;
/// every other status carries a code and a human-readable message.
///
/// The class is [[nodiscard]]: a call that returns a Status and ignores it
/// is a compile error (with -Werror). Every result must be checked,
/// propagated (GKEYS_RETURN_IF_ERROR), or — when ignoring is genuinely
/// correct — explicitly discarded with IgnoreError() plus a comment saying
/// why (see docs/ARCHITECTURE.md "Correctness tooling").
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Explicitly discards this status. The ONLY sanctioned way to drop a
  /// Status on the floor; each call site carries a comment justifying why
  /// the error cannot matter there (best-effort cleanup, an error path
  /// that is about to return a better error, a test asserting on other
  /// state). Grep-able, so the repo linter and reviewers can audit every
  /// deliberate discard.
  void IgnoreError() const {}

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kIoError: return "IoError";
      case StatusCode::kParseError: return "ParseError";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kCancelled: return "Cancelled";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kDataLoss: return "DataLoss";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// A value-or-error result. On success holds a `T`; on failure holds a
/// non-OK Status. Accessing `value()` on an error aborts in debug builds.
/// [[nodiscard]] like Status: discarding one silently loses both the value
/// and the error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr(Status) requires an error status");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// See Status::IgnoreError — the sanctioned explicit discard.
  void IgnoreError() const {}

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define GKEYS_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::gkeys::Status _st = (expr);               \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace gkeys

#endif  // GKEYS_COMMON_STATUS_H_
