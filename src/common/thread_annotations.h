#ifndef GKEYS_COMMON_THREAD_ANNOTATIONS_H_
#define GKEYS_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attributes (-Wthread-safety), compiled
/// away on every other compiler. Annotating a member with GKEYS_GUARDED_BY
/// (or a function with GKEYS_REQUIRES / GKEYS_EXCLUDES) turns the locking
/// discipline the comments used to describe into a build error on clang:
/// reading or writing the member without holding its mutex fails the
/// `-Wthread-safety -Werror` CI job. See docs/ARCHITECTURE.md
/// "Correctness tooling" for how to annotate a new mutex.
///
/// The macro set mirrors the de-facto-standard Abseil/LLVM naming, with a
/// GKEYS_ prefix so nothing collides when this library is embedded.

#if defined(__clang__) && (!defined(SWIG))
#define GKEYS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GKEYS_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

/// Marks a type as a lockable capability (mutex-like classes).
#define GKEYS_CAPABILITY(x) GKEYS_THREAD_ANNOTATION(capability(x))

/// Marks a lock acquired in scope-guard style (std::lock_guard et al.).
#define GKEYS_SCOPED_CAPABILITY GKEYS_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define GKEYS_GUARDED_BY(x) GKEYS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose POINTEE is guarded by `x` (the pointer itself may
/// be read freely).
#define GKEYS_PT_GUARDED_BY(x) GKEYS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called WITH the listed capabilities held.
#define GKEYS_REQUIRES(...) \
  GKEYS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that must be called WITHOUT the listed capabilities held
/// (it acquires them itself; calling it under the lock would deadlock).
#define GKEYS_EXCLUDES(...) \
  GKEYS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires / releases the capability itself.
#define GKEYS_ACQUIRE(...) \
  GKEYS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GKEYS_RELEASE(...) \
  GKEYS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `ret`.
#define GKEYS_TRY_ACQUIRE(ret, ...) \
  GKEYS_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Runtime assertion that the calling thread already holds the capability
/// (teaches the analysis about invariants it cannot derive).
#define GKEYS_ASSERT_CAPABILITY(x) \
  GKEYS_THREAD_ANNOTATION(assert_capability(x))

/// Return value is a reference to a capability-guarded object.
#define GKEYS_RETURN_CAPABILITY(x) GKEYS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's body is exempt from analysis. Reserve it
/// for code the analysis cannot model (e.g. lock/unlock split across
/// functions); every use should carry a justification comment.
#define GKEYS_NO_THREAD_SAFETY_ANALYSIS \
  GKEYS_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // GKEYS_COMMON_THREAD_ANNOTATIONS_H_
