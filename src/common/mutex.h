#ifndef GKEYS_COMMON_MUTEX_H_
#define GKEYS_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace gkeys {

/// std::mutex with clang thread-safety-analysis attributes. libstdc++'s
/// std::mutex carries none, so locking through it is invisible to
/// -Wthread-safety; this wrapper (plus MutexLock / CondVar below) is what
/// lets GKEYS_GUARDED_BY members actually be checked. Zero overhead: every
/// method inlines to the std::mutex call.
class GKEYS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GKEYS_ACQUIRE() { mu_.lock(); }
  void unlock() GKEYS_RELEASE() { mu_.unlock(); }
  bool try_lock() GKEYS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock over Mutex (the std::lock_guard / std::unique_lock stand-in
/// the analysis understands). Also the handle CondVar waits through.
class GKEYS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GKEYS_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() GKEYS_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with Mutex/MutexLock. Waits atomically
/// release and reacquire the lock; from the analysis's point of view the
/// capability is held across the wait, which matches how guarded state
/// may be accessed in wait predicates and after the wait returns.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Waits until `pred()` holds. The predicate runs with the lock held;
  /// annotate its lambda with GKEYS_REQUIRES(mu) when it reads guarded
  /// members.
  template <typename Pred>
  void Wait(MutexLock& lock, Pred pred) {
    cv_.wait(lock.lock_, std::move(pred));
  }

  template <typename Rep, typename Period>
  void WaitFor(MutexLock& lock,
               const std::chrono::duration<Rep, Period>& timeout) {
    cv_.wait_for(lock.lock_, timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gkeys

#endif  // GKEYS_COMMON_MUTEX_H_
