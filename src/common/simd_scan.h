#ifndef GKEYS_COMMON_SIMD_SCAN_H_
#define GKEYS_COMMON_SIMD_SCAN_H_

/// Branch-light byte scanning for the hot text-ingest paths
/// (io/fast_triples.cc): find-next-delimiter and count-occurrences over
/// large buffers, processing a word (or SSE2 vector) per step instead of
/// a byte per step.
///
/// Policy (enforced by the `simd-confinement` lint rule): every SIMD
/// intrinsic and every `#ifdef __SSE*` block in the tree lives in THIS
/// header. Callers use the portable functions below; each one carries a
/// scalar fallback that is bit-for-bit equivalent, chosen at compile
/// time, so behavior never depends on the build architecture — only
/// speed does. The SWAR word path is itself portable C++ (endian-safe:
/// it derives byte indexes arithmetically, not by punning structs), so
/// non-x86 builds still scan 8 bytes per step.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace gkeys {
namespace simd {

/// Sentinel for "not found", mirroring std::string_view::npos.
inline constexpr size_t npos = static_cast<size_t>(-1);

namespace detail {

/// Broadcasts byte `b` into every lane of a 64-bit word.
inline constexpr uint64_t Broadcast(uint8_t b) {
  return 0x0101010101010101ULL * b;
}

/// The classic SWAR zero-byte test: the result has bit 7 set in every
/// lane of `w` that is zero (and only those, when the matching lanes
/// came from an XOR against a broadcast pattern).
inline constexpr uint64_t ZeroLanes(uint64_t w) {
  return (w - 0x0101010101010101ULL) & ~w & 0x8080808080808080ULL;
}

/// Loads 8 little-endian bytes as a word. memcpy compiles to a single
/// unaligned load on every target we build for.
inline uint64_t LoadWord(const char* p) {
  uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

/// Index of the lowest set bit / 8 == index of the first matching lane
/// for a little-endian load.
inline size_t FirstLane(uint64_t mask) {
  return static_cast<size_t>(__builtin_ctzll(mask)) >> 3;
}

}  // namespace detail

/// Returns the index of the first occurrence of `target` in
/// [data, data + size), or `npos`. Equivalent to memchr but inlinable
/// and, on SSE2 targets, 16 bytes per step.
inline size_t FindByte(const char* data, size_t size, char target) {
  size_t i = 0;
#if defined(__SSE2__)
  const __m128i needle = _mm_set1_epi8(target);
  for (; i + 16 <= size; i += 16) {
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(chunk, needle));
    if (mask != 0) return i + static_cast<size_t>(__builtin_ctz(mask));
  }
#else
  const uint64_t needle = detail::Broadcast(static_cast<uint8_t>(target));
  for (; i + 8 <= size; i += 8) {
    const uint64_t hits = detail::ZeroLanes(detail::LoadWord(data + i) ^
                                            needle);
    if (hits != 0) return i + detail::FirstLane(hits);
  }
#endif
  for (; i < size; ++i) {
    if (data[i] == target) return i;
  }
  return npos;
}

/// FindByte over a string_view suffix: first `target` at or after `from`,
/// or `npos` (same contract as string_view::find).
inline size_t FindByte(std::string_view text, char target, size_t from = 0) {
  if (from >= text.size()) return npos;
  size_t at = FindByte(text.data() + from, text.size() - from, target);
  return at == npos ? npos : from + at;
}

/// First position in [data, data + size) holding `a` OR `b`, or `npos`.
/// The tokenizer uses this to stop at either the field delimiter or the
/// escape character in one pass.
inline size_t FindEitherByte(const char* data, size_t size, char a, char b) {
  size_t i = 0;
#if defined(__SSE2__)
  const __m128i na = _mm_set1_epi8(a);
  const __m128i nb = _mm_set1_epi8(b);
  for (; i + 16 <= size; i += 16) {
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const int mask = _mm_movemask_epi8(_mm_or_si128(
        _mm_cmpeq_epi8(chunk, na), _mm_cmpeq_epi8(chunk, nb)));
    if (mask != 0) return i + static_cast<size_t>(__builtin_ctz(mask));
  }
#else
  const uint64_t pa = detail::Broadcast(static_cast<uint8_t>(a));
  const uint64_t pb = detail::Broadcast(static_cast<uint8_t>(b));
  for (; i + 8 <= size; i += 8) {
    const uint64_t w = detail::LoadWord(data + i);
    const uint64_t hits =
        detail::ZeroLanes(w ^ pa) | detail::ZeroLanes(w ^ pb);
    if (hits != 0) return i + detail::FirstLane(hits);
  }
#endif
  for (; i < size; ++i) {
    if (data[i] == a || data[i] == b) return i;
  }
  return npos;
}

/// Number of occurrences of `target` in `text`. The chunked parser uses
/// this to pin each chunk's starting line number before any chunk parses.
inline size_t CountByte(std::string_view text, char target) {
  const char* data = text.data();
  const size_t size = text.size();
  size_t count = 0;
  size_t i = 0;
#if defined(__SSE2__)
  const __m128i needle = _mm_set1_epi8(target);
  for (; i + 16 <= size; i += 16) {
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(chunk, needle));
    count += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(mask)));
  }
#else
  const uint64_t needle = detail::Broadcast(static_cast<uint8_t>(target));
  for (; i + 8 <= size; i += 8) {
    const uint64_t hits = detail::ZeroLanes(detail::LoadWord(data + i) ^
                                            needle);
    count += static_cast<size_t>(__builtin_popcountll(hits));
  }
#endif
  for (; i < size; ++i) {
    count += data[i] == target;
  }
  return count;
}

}  // namespace simd
}  // namespace gkeys

#endif  // GKEYS_COMMON_SIMD_SCAN_H_
