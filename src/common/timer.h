#ifndef GKEYS_COMMON_TIMER_H_
#define GKEYS_COMMON_TIMER_H_

#include <chrono>

namespace gkeys {

/// Wall-clock stopwatch for the benchmark harness and algorithm stats.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gkeys

#endif  // GKEYS_COMMON_TIMER_H_
