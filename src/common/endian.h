#ifndef GKEYS_COMMON_ENDIAN_H_
#define GKEYS_COMMON_ENDIAN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace gkeys {

/// Big-endian and varint primitives shared by the storage layer (and
/// reusable by a future RPC layer). Fixed-width big-endian integers keep
/// lexicographic byte order equal to numeric order — the property
/// ordered-KV record keys rely on — and LEB128-style varints keep
/// length-prefixed record payloads compact.

inline void PutBe32(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v >> 24));
  out.push_back(static_cast<char>(v >> 16));
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v));
}

inline void PutBe64(std::string& out, uint64_t v) {
  PutBe32(out, static_cast<uint32_t>(v >> 32));
  PutBe32(out, static_cast<uint32_t>(v));
}

/// Reads 4 (resp. 8) bytes at `p`. The caller guarantees the bytes exist;
/// use ByteReader for untrusted input.
inline uint32_t GetBe32(const void* p) {
  const auto* b = static_cast<const unsigned char*>(p);
  return (static_cast<uint32_t>(b[0]) << 24) |
         (static_cast<uint32_t>(b[1]) << 16) |
         (static_cast<uint32_t>(b[2]) << 8) | static_cast<uint32_t>(b[3]);
}

inline uint64_t GetBe64(const void* p) {
  const auto* b = static_cast<const unsigned char*>(p);
  return (static_cast<uint64_t>(GetBe32(b)) << 32) | GetBe32(b + 4);
}

/// LEB128 unsigned varint: 7 bits per byte, high bit = continuation.
/// At most 10 bytes for a uint64.
inline void PutVarint(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Decodes a varint from [p, end). Returns the byte just past the varint,
/// or nullptr on truncation / overlong (> 10 bytes) input.
inline const char* GetVarint(const char* p, const char* end, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (p < end && shift < 70) {
    uint64_t byte = static_cast<unsigned char>(*p++);
    result |= (byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return p;
    }
    shift += 7;
  }
  return nullptr;
}

/// Bounds-checked sequential decoder over an untrusted byte span. Every
/// accessor returns false on truncation (the reader then stays failed);
/// decoding never reads out of bounds, so corrupt snapshot payloads
/// surface as Status errors instead of crashes.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* v) {
    if (failed_ || data_.size() - pos_ < 1) return Fail();
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadBe32(uint32_t* v) {
    if (failed_ || data_.size() - pos_ < 4) return Fail();
    *v = GetBe32(data_.data() + pos_);
    pos_ += 4;
    return true;
  }

  bool ReadBe64(uint64_t* v) {
    if (failed_ || data_.size() - pos_ < 8) return Fail();
    *v = GetBe64(data_.data() + pos_);
    pos_ += 8;
    return true;
  }

  bool ReadVarint(uint64_t* v) {
    if (failed_) return false;
    const char* next =
        GetVarint(data_.data() + pos_, data_.data() + data_.size(), v);
    if (next == nullptr) return Fail();
    pos_ = static_cast<size_t>(next - data_.data());
    return true;
  }

  /// Varint that must fit a uint32 (NodeIds, Symbols, counts).
  bool ReadVarint32(uint32_t* v) {
    uint64_t wide = 0;
    if (!ReadVarint(&wide) || wide > UINT32_MAX) return Fail();
    *v = static_cast<uint32_t>(wide);
    return true;
  }

  bool ReadBytes(size_t n, std::string_view* out) {
    if (failed_ || data_.size() - pos_ < n) return Fail();
    *out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  bool ok() const { return !failed_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Fail() {
    failed_ = true;
    return false;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace gkeys

#endif  // GKEYS_COMMON_ENDIAN_H_
