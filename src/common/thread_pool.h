#ifndef GKEYS_COMMON_THREAD_POOL_H_
#define GKEYS_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace gkeys {

/// A fixed-size worker pool. Tasks are arbitrary std::function<void()>.
/// Used by the MapReduce runtime for map/reduce phases and by parallel
/// helpers; the vertex-centric engine manages its own workers because it
/// needs message-driven scheduling rather than a task queue.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task) GKEYS_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished (including tasks that
  /// exited by throwing). If any task threw since the last Wait(), the
  /// first captured exception is rethrown here — the failure surfaces on
  /// the waiting thread instead of tearing down a worker — and the pool
  /// stays usable. Exceptions never drained by a Wait() are dropped on
  /// destruction.
  void Wait() GKEYS_EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop() GKEYS_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_;
  std::deque<std::function<void()>> queue_ GKEYS_GUARDED_BY(mu_);
  CondVar cv_task_;
  CondVar cv_done_;
  /// Queued + running tasks.
  size_t in_flight_ GKEYS_GUARDED_BY(mu_) = 0;
  bool stop_ GKEYS_GUARDED_BY(mu_) = false;
  /// First task exception since the last Wait().
  std::exception_ptr first_error_ GKEYS_GUARDED_BY(mu_);
};

/// Runs `fn(i)` for i in [0, n) across `num_threads` threads, blocking until
/// all iterations finish. Work is divided into contiguous chunks. If an
/// iteration throws, the first exception is rethrown on the calling thread
/// after all chunks finish (see ParallelShards).
void ParallelFor(int num_threads, size_t n,
                 const std::function<void(size_t)>& fn);

/// Runs `fn(shard, begin, end)` for `num_threads` contiguous shards of
/// [0, n). Useful when per-thread state (e.g., a local buffer) is needed.
/// If a shard throws, the remaining shards still run to completion and the
/// first captured exception is rethrown on the calling thread afterwards
/// (an exception escaping a worker thread would std::terminate).
void ParallelShards(int num_threads, size_t n,
                    const std::function<void(int, size_t, size_t)>& fn);

}  // namespace gkeys

#endif  // GKEYS_COMMON_THREAD_POOL_H_
