#ifndef GKEYS_COMMON_JSON_WRITER_H_
#define GKEYS_COMMON_JSON_WRITER_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gkeys {

/// Appends `s` escaped for the inside of a JSON string literal (no
/// surrounding quotes): quotes, backslashes, and control characters
/// become escape sequences, so arbitrary benchmark / dataset names stay
/// parseable.
inline void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

inline std::string JsonEscaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(s, &out);
  return out;
}

/// Appends a JSON number token. JSON has no NaN / Infinity literals, so
/// non-finite values are emitted as null.
inline void AppendJsonNumber(double v, std::string* out) {
  if (!std::isfinite(v)) {
    out->append("null");
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out->append(buf);
}

/// The row shape the bench JSON sink records: (name, numeric fields).
using JsonRows =
    std::vector<std::pair<std::string,
                          std::vector<std::pair<std::string, double>>>>;

/// Renders rows as a JSON array of flat objects — the bench artifact
/// format CI archives and parses.
inline std::string RenderJsonRows(const JsonRows& rows) {
  std::string out = "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& [name, fields] = rows[i];
    out.append("  {\"name\": \"");
    AppendJsonEscaped(name, &out);
    out.push_back('"');
    for (const auto& [key, value] : fields) {
      out.append(", \"");
      AppendJsonEscaped(key, &out);
      out.append("\": ");
      AppendJsonNumber(value, &out);
    }
    out.push_back('}');
    if (i + 1 != rows.size()) out.push_back(',');
    out.push_back('\n');
  }
  out.append("]\n");
  return out;
}

}  // namespace gkeys

#endif  // GKEYS_COMMON_JSON_WRITER_H_
