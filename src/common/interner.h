#ifndef GKEYS_COMMON_INTERNER_H_
#define GKEYS_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"

namespace gkeys {

/// A symbol: index into a StringInterner. 32-bit so it packs tightly into
/// triples and adjacency lists.
using Symbol = uint32_t;

/// Sentinel for "no symbol".
inline constexpr Symbol kNoSymbol = UINT32_MAX;

/// Bidirectional string <-> Symbol table. Not thread-safe for writes;
/// reads of already-interned symbols are safe after construction phases.
///
/// The graph, pattern, and generator layers share one interner per Graph so
/// predicate/type/value identifiers compare by integer equality.
class StringInterner {
 public:
  StringInterner() = default;

  // Copyable: a Graph owns its interner and graphs are copyable.
  StringInterner(const StringInterner&) = default;
  StringInterner& operator=(const StringInterner&) = default;

  /// Returns the symbol for `s`, interning it if new. Lookup of an
  /// already-interned string allocates nothing (transparent hash).
  Symbol Intern(std::string_view s) {
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    Symbol id = static_cast<Symbol>(strings_.size());
    strings_.emplace_back(s);
    index_.emplace(strings_.back(), id);
    return id;
  }

  /// Returns the symbol for `s` or kNoSymbol if absent. Does not intern.
  Symbol Lookup(std::string_view s) const {
    auto it = index_.find(s);
    return it == index_.end() ? kNoSymbol : it->second;
  }

  /// Resolves a symbol back to its string. `sym` must be valid.
  const std::string& Resolve(Symbol sym) const { return strings_[sym]; }

  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  StringMap<Symbol> index_;
};

}  // namespace gkeys

#endif  // GKEYS_COMMON_INTERNER_H_
