#ifndef GKEYS_COMMON_RNG_H_
#define GKEYS_COMMON_RNG_H_

#include <cstdint>

namespace gkeys {

/// Deterministic 64-bit PRNG (splitmix64). Used by the generators and the
/// property tests so every run is reproducible from a seed. Deliberately
/// not std::mt19937 so results are identical across standard libraries.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability `p`.
  bool Chance(double p) { return NextDouble() < p; }

  /// Forks an independent stream (for per-thread determinism).
  Rng Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  uint64_t state_;
};

}  // namespace gkeys

#endif  // GKEYS_COMMON_RNG_H_
