#ifndef GKEYS_COMMON_HASH_H_
#define GKEYS_COMMON_HASH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace gkeys {

/// FNV-1a 64-bit: the storage layer's integrity checksum (snapshot data
/// regions, write-ahead-log records). Not cryptographic — it detects
/// torn writes and bit flips, not adversaries.
inline uint64_t Fnv1a64(std::string_view data,
                        uint64_t seed = 0xcbf29ce484222325ull) {
  uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Transparent (heterogeneous) string hash: lets string-keyed hash maps
/// be probed with std::string_view / const char* without materializing a
/// temporary std::string per lookup.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const std::string& s) const noexcept {
    return (*this)(std::string_view(s));
  }
  size_t operator()(const char* s) const noexcept {
    return (*this)(std::string_view(s));
  }
};

/// std::string-keyed hash map with allocation-free heterogeneous lookup.
template <typename V>
using StringMap =
    std::unordered_map<std::string, V, TransparentStringHash, std::equal_to<>>;

}  // namespace gkeys

#endif  // GKEYS_COMMON_HASH_H_
