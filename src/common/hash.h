#ifndef GKEYS_COMMON_HASH_H_
#define GKEYS_COMMON_HASH_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace gkeys {

/// Transparent (heterogeneous) string hash: lets string-keyed hash maps
/// be probed with std::string_view / const char* without materializing a
/// temporary std::string per lookup.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const std::string& s) const noexcept {
    return (*this)(std::string_view(s));
  }
  size_t operator()(const char* s) const noexcept {
    return (*this)(std::string_view(s));
  }
};

/// std::string-keyed hash map with allocation-free heterogeneous lookup.
template <typename V>
using StringMap =
    std::unordered_map<std::string, V, TransparentStringHash, std::equal_to<>>;

}  // namespace gkeys

#endif  // GKEYS_COMMON_HASH_H_
