#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace gkeys {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_task_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.NotifyOne();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    cv_done_.Wait(lock, [this]() GKEYS_REQUIRES(mu_) {
      return in_flight_ == 0;
    });
    error = std::exchange(first_error_, nullptr);
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void ThreadPool::WorkerLoop() {
  // Decrements in_flight_ on every exit path — a throwing task must still
  // count down, or Wait() blocks forever on a count that never reaches 0.
  struct InFlightGuard {
    ThreadPool* pool;
    ~InFlightGuard() {
      MutexLock lock(pool->mu_);
      --pool->in_flight_;
      if (pool->in_flight_ == 0) pool->cv_done_.NotifyAll();
    }
  };
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      cv_task_.Wait(lock, [this]() GKEYS_REQUIRES(mu_) {
        return stop_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      InFlightGuard guard{this};
      try {
        task();
      } catch (...) {
        MutexLock lock(mu_);
        if (first_error_ == nullptr) {
          first_error_ = std::current_exception();
        }
      }
    }
  }
}

void ParallelFor(int num_threads, size_t n,
                 const std::function<void(size_t)>& fn) {
  ParallelShards(num_threads, n, [&](int, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ParallelShards(int num_threads, size_t n,
                    const std::function<void(int, size_t, size_t)>& fn) {
  int p = std::max(1, num_threads);
  if (n == 0) return;
  if (p == 1) {
    fn(0, 0, n);
    return;
  }
  // A shard exception must not escape its std::thread (std::terminate);
  // the first one is captured and rethrown on the calling thread after
  // every shard has joined, matching ThreadPool::Wait's contract.
  Mutex error_mu;
  std::exception_ptr first_error;
  std::vector<std::thread> threads;
  threads.reserve(p);
  size_t chunk = (n + p - 1) / p;
  for (int t = 0; t < p; ++t) {
    size_t begin = std::min(n, static_cast<size_t>(t) * chunk);
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([&fn, &error_mu, &first_error, t, begin, end] {
      try {
        fn(t, begin, end);
      } catch (...) {
        MutexLock lock(error_mu);
        if (first_error == nullptr) first_error = std::current_exception();
      }
    });
  }
  for (auto& th : threads) th.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace gkeys
