#include "common/thread_pool.h"

#include <algorithm>

namespace gkeys {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

void ParallelFor(int num_threads, size_t n,
                 const std::function<void(size_t)>& fn) {
  ParallelShards(num_threads, n, [&](int, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ParallelShards(int num_threads, size_t n,
                    const std::function<void(int, size_t, size_t)>& fn) {
  int p = std::max(1, num_threads);
  if (n == 0) return;
  if (p == 1) {
    fn(0, 0, n);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(p);
  size_t chunk = (n + p - 1) / p;
  for (int t = 0; t < p; ++t) {
    size_t begin = std::min(n, static_cast<size_t>(t) * chunk);
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([&fn, t, begin, end] { fn(t, begin, end); });
  }
  for (auto& th : threads) th.join();
}

}  // namespace gkeys
